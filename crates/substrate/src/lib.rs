//! Warm substrate cache for the suite's prepare phase.
//!
//! Every kernel's `prepare` splits into a deterministic, cacheable
//! *substrate build* (genome generation, FM-index construction, NN weight
//! initialization, …) and a cheap per-run *instantiation* (engine choice,
//! task ordering). This crate holds the machinery that makes the build
//! half reusable:
//!
//! * [`codec`] — a dependency-free length-checked binary serializer.
//!   Floats round-trip through their bit patterns, so a decoded substrate
//!   is bit-identical to the built one and run checksums cannot drift.
//! * [`memo`] — an in-process map of `Arc`-shared substrates, so repeated
//!   runs (compare loops, benches, a future server) inside one process
//!   build each substrate once.
//! * [`store`] — a content-addressed on-disk store (`--substrate-cache`)
//!   with atomic temp+rename writes, checksum-verified loads and
//!   size-capped eviction, so warm starts survive across processes.
//!
//! [`SubstrateCache`] layers the three: memo hit, then disk hit, then
//! build (and back-fill both). Corrupt, truncated or wrong-schema disk
//! entries are never trusted — they decode to `None` and the substrate is
//! silently rebuilt.

#![forbid(unsafe_code)]

pub mod codec;
pub mod memo;
pub mod store;

pub use codec::{Codec, Decoder, Encoder};
pub use memo::Memo;
pub use store::DiskStore;

use std::path::Path;
use std::sync::Arc;

/// On-disk substrate format version. Bump whenever any substrate's
/// encoded layout changes; entries written under another substrate schema
/// version are ignored and rebuilt, never migrated.
pub const SUBSTRATE_SCHEMA: u32 = 1;

/// Identity of one cached substrate: which kernel, which dataset tier,
/// which generation seed, and which encoding schema. Two runs with equal
/// keys are guaranteed (by dataset determinism) to build bit-identical
/// substrates, which is what makes sharing them safe.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SubstrateKey {
    /// Kernel short name (e.g. `"fmi"`).
    pub kernel: String,
    /// Dataset tier name (e.g. `"tiny"`).
    pub tier: String,
    /// The seed(s) folded into one value; part of the content address so
    /// a seed change invalidates the entry.
    pub seed: u64,
    /// The substrate encoding schema ([`SUBSTRATE_SCHEMA`]).
    pub schema: u32,
}

impl SubstrateKey {
    /// Creates a key under the current [`SUBSTRATE_SCHEMA`].
    pub fn new(kernel: &str, tier: &str, seed: u64) -> SubstrateKey {
        SubstrateKey {
            kernel: kernel.to_string(),
            tier: tier.to_string(),
            seed,
            schema: SUBSTRATE_SCHEMA,
        }
    }

    /// The canonical string form, used as the memo key and the disk file
    /// stem: `<kernel>-<tier>-<seed:016x>-v<schema>`.
    pub fn canonical(&self) -> String {
        format!(
            "{}-{}-{:016x}-v{}",
            self.kernel, self.tier, self.seed, self.schema
        )
    }
}

/// Where a substrate came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Reused from the in-process memo.
    Memo,
    /// Loaded and checksum-verified from the on-disk store.
    Disk,
    /// Built from scratch (cold, caching disabled, or a bad disk entry).
    Built,
}

impl CacheOutcome {
    /// Whether the substrate was obtained without building it.
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheOutcome::Built)
    }
}

/// The layered substrate cache: in-process memo over an optional on-disk
/// store. Cheap to construct; share one per process (or per run) and call
/// [`SubstrateCache::get_or_build`] from any thread.
pub struct SubstrateCache {
    enabled: bool,
    memo: Memo,
    store: Option<DiskStore>,
}

impl SubstrateCache {
    /// Memo-only cache: substrates are shared within the process but
    /// nothing touches disk.
    pub fn in_process() -> SubstrateCache {
        SubstrateCache {
            enabled: true,
            memo: Memo::new(),
            store: None,
        }
    }

    /// Memo plus on-disk store rooted at `dir` (created if missing).
    pub fn with_store(dir: &Path) -> std::io::Result<SubstrateCache> {
        Ok(SubstrateCache {
            enabled: true,
            memo: Memo::new(),
            store: Some(DiskStore::open(dir)?),
        })
    }

    /// A cache that never reuses anything (`--no-cache`): every
    /// `get_or_build` builds.
    pub fn disabled() -> SubstrateCache {
        SubstrateCache {
            enabled: false,
            memo: Memo::new(),
            store: None,
        }
    }

    /// Whether lookups can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether a disk store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Returns the substrate for `key`, building it with `build` only on
    /// a miss. Lookup order: memo, then disk (verified and memoized),
    /// then build (memoized and written back to disk). Disk entries that
    /// fail any check — magic, schema, key, checksum, payload decode —
    /// are treated as absent and rebuilt; a failed write-back never fails
    /// the run.
    pub fn get_or_build<T, F>(&self, key: &SubstrateKey, build: F) -> (Arc<T>, CacheOutcome)
    where
        T: Codec + Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        if !self.enabled {
            return (Arc::new(build()), CacheOutcome::Built);
        }
        let memo_key = key.canonical();
        if let Some(arc) = self.memo.get::<T>(&memo_key) {
            return (arc, CacheOutcome::Memo);
        }
        if let Some(store) = &self.store {
            if let Some(payload) = store.load(key) {
                if let Some(value) = T::from_bytes(&payload) {
                    let arc = Arc::new(value);
                    self.memo.insert(&memo_key, arc.clone());
                    return (arc, CacheOutcome::Disk);
                }
                // Verified container, undecodable payload: a substrate
                // layout changed without a schema bump. Fall through and
                // rebuild; the save below overwrites the stale entry.
            }
        }
        let arc = Arc::new(build());
        self.memo.insert(&memo_key, arc.clone());
        if let Some(store) = &self.store {
            let _ = store.save(key, &arc.to_bytes());
        }
        (arc, CacheOutcome::Built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gb_substrate_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn memo_hits_within_process() {
        let cache = SubstrateCache::in_process();
        let key = SubstrateKey::new("fmi", "tiny", 7);
        let (a, o1) = cache.get_or_build(&key, || vec![1u64, 2, 3]);
        let (b, o2) = cache.get_or_build(&key, || panic!("must not rebuild"));
        assert_eq!(o1, CacheOutcome::Built);
        assert_eq!(o2, CacheOutcome::Memo);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn disk_hits_across_cache_instances() {
        let dir = tmp_dir("disk");
        let key = SubstrateKey::new("bsw", "tiny", 9);
        let cold = SubstrateCache::with_store(&dir).unwrap();
        let (a, o1) = cold.get_or_build(&key, || vec![5u32; 100]);
        assert_eq!(o1, CacheOutcome::Built);
        // A fresh cache (new process, in effect) loads from disk.
        let warm = SubstrateCache::with_store(&dir).unwrap();
        let (b, o2) = warm.get_or_build::<Vec<u32>, _>(&key, || panic!("must hit disk"));
        assert_eq!(o2, CacheOutcome::Disk);
        assert_eq!(*a, *b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = SubstrateCache::in_process();
        let (a, _) = cache.get_or_build(&SubstrateKey::new("fmi", "tiny", 1), || 10u64);
        let (b, _) = cache.get_or_build(&SubstrateKey::new("fmi", "tiny", 2), || 20u64);
        let (c, _) = cache.get_or_build(&SubstrateKey::new("fmi", "small", 1), || 30u64);
        assert_eq!((*a, *b, *c), (10, 20, 30));
    }

    #[test]
    fn disabled_cache_always_builds() {
        let cache = SubstrateCache::disabled();
        let key = SubstrateKey::new("grm", "tiny", 3);
        let (_, o1) = cache.get_or_build(&key, || 1u64);
        let (_, o2) = cache.get_or_build(&key, || 2u64);
        assert_eq!(o1, CacheOutcome::Built);
        assert_eq!(o2, CacheOutcome::Built);
        assert!(!o2.is_hit());
    }

    #[test]
    fn schema_mismatch_rebuilds() {
        let dir = tmp_dir("schema");
        let mut key = SubstrateKey::new("chain", "tiny", 4);
        let cache = SubstrateCache::with_store(&dir).unwrap();
        let _ = cache.get_or_build(&key, || vec![1u8, 2, 3]);
        // Same file name would differ too, but force the point: a key
        // under another schema version never matches the stored entry.
        key.schema += 1;
        let fresh = SubstrateCache::with_store(&dir).unwrap();
        let (_, o) = fresh.get_or_build(&key, || vec![9u8]);
        assert_eq!(o, CacheOutcome::Built);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
