//! In-process substrate memo: `Arc`-shared values keyed by canonical key
//! string plus concrete type.
//!
//! The type is part of the map key so two substrates that happen to share
//! a canonical key string (they should not, but the memo must not rely on
//! that) can never alias each other's storage: a downcast miss is treated
//! as a plain miss.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A thread-safe map from `(key, type)` to `Arc<T>`.
#[derive(Debug, Default)]
pub struct Memo {
    map: Mutex<HashMap<(String, TypeId), Arc<dyn Any + Send + Sync>>>,
}

impl Memo {
    /// An empty memo.
    pub fn new() -> Memo {
        Memo::default()
    }

    /// Looks up `key` as a `T`, cloning the shared handle on a hit.
    // PANIC-FREE: lock poisoning implies another thread already panicked —
    // the run has failed; propagating is strictly more informative.
    pub fn get<T: Send + Sync + 'static>(&self, key: &str) -> Option<Arc<T>> {
        let map = self.map.lock().expect("memo lock poisoned");
        let entry = map.get(&(key.to_string(), TypeId::of::<T>()))?;
        entry.clone().downcast::<T>().ok()
    }

    /// Stores `value` under `key`, replacing any previous entry of the
    /// same type.
    pub fn insert<T: Send + Sync + 'static>(&self, key: &str, value: Arc<T>) {
        let mut map = self.map.lock().expect("memo lock poisoned");
        map.insert((key.to_string(), TypeId::of::<T>()), value);
    }

    /// Number of memoized substrates.
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo lock poisoned").len()
    }

    /// Whether the memo holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_shares_the_arc() {
        let memo = Memo::new();
        let v = Arc::new(vec![1u64, 2, 3]);
        memo.insert("k", v.clone());
        let got: Arc<Vec<u64>> = memo.get("k").unwrap();
        assert!(Arc::ptr_eq(&v, &got));
    }

    #[test]
    fn type_is_part_of_the_key() {
        let memo = Memo::new();
        memo.insert("k", Arc::new(7u64));
        assert!(memo.get::<u32>("k").is_none());
        assert_eq!(*memo.get::<u64>("k").unwrap(), 7);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn missing_key_misses() {
        let memo = Memo::new();
        assert!(memo.get::<u64>("absent").is_none());
        assert!(memo.is_empty());
    }
}
