//! Content-addressed on-disk substrate store.
//!
//! One file per [`SubstrateKey`](crate::SubstrateKey), named by the key's
//! canonical form. Each file is a self-verifying container:
//!
//! ```text
//! magic "GBSB" | schema u32 | kernel bytes | tier bytes | seed u64
//!              | payload bytes | fnv1a-64 checksum over everything above
//! ```
//!
//! Writes go through a temp file in the same directory plus an atomic
//! rename, so readers never observe a half-written entry (the same
//! discipline as the manifest writer). Loads re-verify everything —
//! magic, checksum, schema, and the full key — and return `None` on any
//! mismatch: the caller's contract is *rebuild, never trust*. The store
//! is size-capped; after each write the oldest entries (by modification
//! time) are evicted until the total drops under the cap.

use crate::codec::{Codec, Decoder, Encoder};
use crate::SubstrateKey;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Container magic: identifies a substrate entry regardless of extension.
pub const MAGIC: [u8; 4] = *b"GBSB";

/// File extension for substrate entries.
pub const ENTRY_EXT: &str = "gbs";

/// Default size cap: plenty for every tier of all twelve kernels while
/// still bounding an unattended cache directory.
pub const DEFAULT_CAP_BYTES: u64 = 1 << 30;

/// 64-bit FNV-1a over `bytes` — the container's integrity checksum.
/// Not cryptographic; it guards against truncation and bit rot, not
/// adversaries (the cache directory is as trusted as the binary itself).
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A directory of checksum-verified substrate entries.
#[derive(Debug, Clone)]
pub struct DiskStore {
    dir: PathBuf,
    cap_bytes: u64,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `dir`, with the
    /// [`DEFAULT_CAP_BYTES`] size cap.
    pub fn open(dir: &Path) -> io::Result<DiskStore> {
        DiskStore::open_with_cap(dir, DEFAULT_CAP_BYTES)
    }

    /// Opens the store with an explicit size cap in bytes.
    pub fn open_with_cap(dir: &Path, cap_bytes: u64) -> io::Result<DiskStore> {
        fs::create_dir_all(dir)?;
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            cap_bytes,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path an entry for `key` lives at.
    pub fn entry_path(&self, key: &SubstrateKey) -> PathBuf {
        self.dir.join(format!("{}.{ENTRY_EXT}", key.canonical()))
    }

    /// Loads and fully verifies the payload for `key`. Any failure —
    /// missing file, bad magic, failed checksum, schema or key mismatch,
    /// truncation — yields `None`.
    pub fn load(&self, key: &SubstrateKey) -> Option<Vec<u8>> {
        let bytes = fs::read(self.entry_path(key)).ok()?;
        // Checksum trailer first: anything after this is known-intact.
        let body_len = bytes.len().checked_sub(8)?;
        let (body, trailer) = bytes.split_at(body_len);
        let stored = u64::from_le_bytes(trailer.try_into().ok()?);
        if checksum64(body) != stored {
            return None;
        }
        let mut d = Decoder::new(body);
        let mut magic = [0u8; 4];
        for slot in &mut magic {
            *slot = d.get_u8()?;
        }
        if magic != MAGIC {
            return None;
        }
        let schema = d.get_u32()?;
        let kernel = String::decode(&mut d)?;
        let tier = String::decode(&mut d)?;
        let seed = d.get_u64()?;
        if schema != key.schema || kernel != key.kernel || tier != key.tier || seed != key.seed {
            return None;
        }
        let payload = d.get_bytes()?;
        d.is_at_end().then(|| payload.to_vec())
    }

    /// Writes the entry for `key` atomically (temp file + rename into
    /// place), then evicts oldest entries past the size cap.
    pub fn save(&self, key: &SubstrateKey, payload: &[u8]) -> io::Result<()> {
        let mut e = Encoder::new();
        for b in MAGIC {
            e.put_u8(b);
        }
        e.put_u32(key.schema);
        key.kernel.encode(&mut e);
        key.tier.encode(&mut e);
        e.put_u64(key.seed);
        e.put_bytes(payload);
        let mut bytes = e.into_bytes();
        let sum = checksum64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());

        let final_path = self.entry_path(key);
        let tmp_path = self
            .dir
            .join(format!(".{}.{}.tmp", key.canonical(), std::process::id()));
        fs::write(&tmp_path, &bytes)?;
        let renamed = fs::rename(&tmp_path, &final_path);
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp_path);
        }
        renamed?;
        self.evict(&final_path);
        Ok(())
    }

    /// Deletes oldest entries until the store fits the cap. The entry at
    /// `keep` (the one just written) is never evicted, so a single
    /// oversized substrate still caches. Eviction failures are ignored:
    /// the store is an accelerator, not a system of record.
    fn evict(&self, keep: &Path) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut files: Vec<(PathBuf, u64, std::time::SystemTime)> = entries
            .flatten()
            .filter_map(|entry| {
                let path = entry.path();
                if path.extension().and_then(|x| x.to_str()) != Some(ENTRY_EXT) {
                    return None;
                }
                let meta = entry.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((path, meta.len(), mtime))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
        if total <= self.cap_bytes {
            return;
        }
        files.sort_by_key(|(_, _, mtime)| *mtime);
        for (path, len, _) in files {
            if total <= self.cap_bytes {
                break;
            }
            if path == keep {
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
            }
        }
    }

    /// Total bytes currently held by entries (diagnostics and tests).
    pub fn total_bytes(&self) -> u64 {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some(ENTRY_EXT))
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> DiskStore {
        let dir = std::env::temp_dir().join(format!("gb_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DiskStore::open(&dir).unwrap()
    }

    fn key(kernel: &str) -> SubstrateKey {
        SubstrateKey::new(kernel, "tiny", 0xABCD)
    }

    #[test]
    fn save_load_round_trips() {
        let s = store("roundtrip");
        let k = key("fmi");
        s.save(&k, b"payload bytes").unwrap();
        assert_eq!(s.load(&k).as_deref(), Some(&b"payload bytes"[..]));
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn missing_entry_is_none() {
        let s = store("missing");
        assert_eq!(s.load(&key("bsw")), None);
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let s = store("bitflip");
        let k = key("chain");
        s.save(&k, b"sensitive").unwrap();
        let path = s.entry_path(&k);
        let clean = fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert_eq!(s.load(&k), None, "flip at byte {i} went undetected");
        }
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn truncation_is_caught() {
        let s = store("trunc");
        let k = key("grm");
        s.save(&k, &vec![9u8; 256]).unwrap();
        let path = s.entry_path(&k);
        let clean = fs::read(&path).unwrap();
        for cut in [0, 1, 7, clean.len() / 2, clean.len() - 1] {
            fs::write(&path, &clean[..cut]).unwrap();
            assert_eq!(s.load(&k), None, "truncation to {cut} went undetected");
        }
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn wrong_key_fields_miss() {
        let s = store("wrongkey");
        let k = key("spoa");
        s.save(&k, b"x").unwrap();
        // Same file contents, different expectations: copy the entry over
        // the other key's file name so only the embedded header differs.
        let mut other = key("spoa");
        other.seed ^= 1;
        fs::copy(s.entry_path(&k), s.entry_path(&other)).unwrap();
        assert_eq!(s.load(&other), None);
        let mut wrong_schema = key("spoa");
        wrong_schema.schema += 1;
        fs::copy(s.entry_path(&k), s.entry_path(&wrong_schema)).unwrap();
        assert_eq!(s.load(&wrong_schema), None);
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn eviction_respects_cap_and_keeps_newest() {
        let dir = std::env::temp_dir().join(format!("gb_store_evict_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // Cap small enough that three ~300-byte entries cannot coexist.
        let s = DiskStore::open_with_cap(&dir, 700).unwrap();
        let payload = vec![1u8; 256];
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            let k = SubstrateKey::new(name, "tiny", i as u64);
            s.save(&k, &payload).unwrap();
            // mtime granularity on some filesystems is coarse; space the
            // writes out so eviction order is well-defined.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(
            s.total_bytes() <= 700,
            "store over cap: {}",
            s.total_bytes()
        );
        // The most recent entry must have survived.
        assert!(s.load(&SubstrateKey::new("c", "tiny", 2)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_temp_files_do_not_linger() {
        let s = store("tmpfiles");
        s.save(&key("abea"), b"z").unwrap();
        let leftovers = fs::read_dir(s.dir())
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) != Some(ENTRY_EXT))
            .count();
        assert_eq!(leftovers, 0);
        let _ = fs::remove_dir_all(s.dir());
    }
}
