//! Property tests for the substrate codec: every encodable value must
//! decode back bit-identically (floats compared through their bit
//! patterns, so NaN payloads and negative zero count too), the decoder
//! must consume exactly the bytes the encoder wrote, and mutated or
//! truncated payloads must never panic the decoder — the worst allowed
//! outcome is `None` or a well-formed but different value (the store's
//! checksum trailer screens real corruption before the decoder runs;
//! these properties pin the defense-in-depth layer underneath it).

use gb_substrate::{Codec, Decoder, Encoder};
use proptest::prelude::*;

fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
    let mut e = Encoder::new();
    v.encode(&mut e);
    let bytes = e.into_bytes();
    let mut d = Decoder::new(&bytes);
    let back = T::decode(&mut d).expect("valid payload must decode");
    assert_eq!(&back, v);
    assert!(d.is_at_end(), "decode must consume every encoded byte");
}

/// Strings from arbitrary byte soup: keep whatever slice is valid
/// UTF-8 so multi-byte sequences still show up.
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8.., 0..48).prop_map(|bytes| match String::from_utf8(bytes) {
        Ok(s) => s,
        Err(e) => {
            let valid = e.utf8_error().valid_up_to();
            let mut b = e.into_bytes();
            b.truncate(valid);
            String::from_utf8(b).unwrap()
        }
    })
}

proptest! {
    #[test]
    fn scalars_round_trip(a in 0u8.., b in 0u32.., c in 0u64.., d in 0usize.., e in prop::bool::ANY) {
        round_trip(&a);
        round_trip(&b);
        round_trip(&c);
        round_trip(&d);
        round_trip(&e);
    }

    #[test]
    fn floats_round_trip_bit_exact(bits32 in 0u32.., bits64 in 0u64..) {
        // Drive through raw bit patterns so NaNs and -0.0 are covered;
        // compare via bits since NaN != NaN under PartialEq.
        let mut e = Encoder::new();
        f32::from_bits(bits32).encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = f32::decode(&mut d).expect("f32 must decode");
        prop_assert_eq!(back.to_bits(), bits32);
        prop_assert!(d.is_at_end());

        let mut e = Encoder::new();
        f64::from_bits(bits64).encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = f64::decode(&mut d).expect("f64 must decode");
        prop_assert_eq!(back.to_bits(), bits64);
        prop_assert!(d.is_at_end());
    }

    #[test]
    fn strings_and_vecs_round_trip(
        s in arb_string(),
        v in prop::collection::vec(0u64.., 0..32),
        nested in prop::collection::vec(prop::collection::vec(0u32.., 0..8), 0..8),
    ) {
        round_trip(&s);
        round_trip(&v);
        round_trip(&nested);
    }

    #[test]
    fn pairs_and_compounds_round_trip(a in 0u64.., s in arb_string(), v in prop::collection::vec(0u32.., 5usize)) {
        round_trip(&(a, s.clone()));
        round_trip(&(s, v.clone()));
        let arr: [u32; 5] = [v[0], v[1], v[2], v[3], v[4]];
        round_trip(&arr);
    }

    #[test]
    fn truncation_never_panics(v in prop::collection::vec(0u64.., 0..16), cut in 0usize..64) {
        let mut e = Encoder::new();
        v.encode(&mut e);
        let mut bytes = e.into_bytes();
        let len = bytes.len();
        bytes.truncate(len.saturating_sub(cut));
        let mut d = Decoder::new(&bytes);
        match Vec::<u64>::decode(&mut d) {
            // Nothing cut: the full value must still come back.
            Some(back) if cut == 0 => prop_assert_eq!(back, v),
            // Anything shorter either fails cleanly or decodes a
            // (necessarily shorter) prefix — never a panic/over-read.
            _ => {}
        }
    }

    #[test]
    fn random_mutation_never_panics(v in prop::collection::vec(0u32.., 1..16), pos in 0usize.., mask in 1u8..) {
        let mut e = Encoder::new();
        v.encode(&mut e);
        let mut bytes = e.into_bytes();
        let i = pos % bytes.len();
        bytes[i] ^= mask;
        // A flipped byte may corrupt the length header into a huge
        // claimed element count; the decoder must bail, not allocate
        // or read past the buffer.
        let _ = Vec::<u32>::decode(&mut Decoder::new(&bytes));
    }

    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(0u8.., 0..64)) {
        let mut d = Decoder::new(&bytes);
        let _ = Vec::<(u64, String)>::decode(&mut d);
        let mut d = Decoder::new(&bytes);
        let _ = String::decode(&mut d);
    }
}
