//! The `genomicsbench` command-line harness.
//!
//! ```text
//! genomicsbench list
//! genomicsbench run <kernel|all> [--size tiny|small|large] [--threads N]
//!                   [--trace <file.json>] [--metrics <file.json>]
//! genomicsbench profile <kernel> [--size tiny|small|large] [--threads N]
//!                   [--trace <file.json>] [--metrics <file.json>]
//! genomicsbench report <table1|table2|table3|table4|table5|fig3..fig9|all>
//!                      [--size tiny|small|large] [--json <dir>]
//!                      [--trace <file.json>] [--metrics <file.json>]
//! ```

use gb_obs::{MetricsRegistry, NullRecorder, Recorder, TaskStats, TraceRecorder};
use gb_suite::dataset::DatasetSize;
use gb_suite::kernels::{prepare, run_parallel, run_parallel_instrumented, KernelId};
use gb_suite::reports::{self, Report};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  genomicsbench list
  genomicsbench run <kernel|all> [--size S] [--threads N] [--trace FILE] [--metrics FILE]
  genomicsbench profile <kernel> [--size S] [--threads N] [--trace FILE] [--metrics FILE]
  genomicsbench report <name|all> [--size S] [--json DIR] [--trace FILE] [--metrics FILE]
  genomicsbench experiments [--size S] [--json FILE]
  genomicsbench export <dir> [--size S]
    sizes: tiny small large (default small)
    names: table1 table2 table3 table4 table5 fig3 fig4 fig5 fig6 fig7 fig8 fig9
    --json is a directory for 'report' (one <name>.json per report) and an
      output file for 'experiments'; --trace writes a Chrome/Perfetto trace,
      --metrics a JSON metrics dump. Each subcommand rejects options it does
      not use.";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Opt {
    Size,
    Threads,
    Json,
    Trace,
    Metrics,
}

impl Opt {
    fn flag(self) -> &'static str {
        match self {
            Opt::Size => "--size",
            Opt::Threads => "--threads",
            Opt::Json => "--json",
            Opt::Trace => "--trace",
            Opt::Metrics => "--metrics",
        }
    }
}

#[derive(Default)]
struct Options {
    size: Option<DatasetSize>,
    threads: Option<usize>,
    json: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
}

impl Options {
    fn size(&self) -> DatasetSize {
        self.size.unwrap_or(DatasetSize::Small)
    }

    fn threads(&self) -> usize {
        self.threads.unwrap_or(1)
    }
}

/// Parses options, accepting only the flags `cmd` supports — a flag that
/// *some other* subcommand accepts produces a targeted error instead of
/// being silently ignored.
fn parse_options(cmd: &str, args: &[String], allowed: &[Opt]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let all = [Opt::Size, Opt::Threads, Opt::Json, Opt::Trace, Opt::Metrics];
        let Some(opt) = all.iter().copied().find(|o| o.flag() == a.as_str()) else {
            return Err(format!("unknown option '{a}'"));
        };
        if !allowed.contains(&opt) {
            return Err(format!("'{cmd}' does not accept {}", opt.flag()));
        }
        let v = it
            .next()
            .ok_or_else(|| format!("{} needs a value", opt.flag()))?;
        match opt {
            Opt::Size => opts.size = Some(v.parse()?),
            Opt::Threads => opts.threads = Some(v.parse::<usize>().map_err(|e| e.to_string())?),
            Opt::Json => opts.json = Some(v.clone()),
            Opt::Trace => opts.trace = Some(v.clone()),
            Opt::Metrics => opts.metrics = Some(v.clone()),
        }
    }
    Ok(opts)
}

fn write_trace(recorder: &TraceRecorder, path: &str) -> Result<(), String> {
    recorder
        .trace()
        .write_to_file(std::path::Path::new(path))
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {path} ({} events)", recorder.trace().len());
    Ok(())
}

fn write_metrics(registry: &MetricsRegistry, path: &str) -> Result<(), String> {
    let body = serde_json::to_string_pretty(&registry.to_json()).map_err(|e| e.to_string())?;
    std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn print_task_stats(stats: &TaskStats) {
    println!(
        "task latency: p50 {}  p90 {}  p99 {}  max {}  mean {}",
        format_ns(stats.p50_ns),
        format_ns(stats.p90_ns),
        format_ns(stats.p99_ns),
        format_ns(stats.max_ns),
        format_ns(stats.mean_ns),
    );
    println!(
        "{:<7} {:>7} {:>12} {:>12} {:>7}",
        "worker", "tasks", "busy", "idle", "util"
    );
    for w in &stats.workers {
        println!(
            "{:<7} {:>7} {:>12} {:>12} {:>6.1}%",
            w.worker,
            w.tasks,
            format_ns(w.busy_ns),
            format_ns(w.idle_ns),
            w.utilization() * 100.0
        );
    }
    println!("overall utilization: {:.1}%", stats.utilization * 100.0);
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    match cmd.as_str() {
        "list" => {
            parse_options(cmd, &args[1..], &[])?;
            println!("{:<11} {:<22} pipeline", "kernel", "source tool");
            for id in KernelId::ALL {
                println!(
                    "{:<11} {:<22} {}",
                    id.name(),
                    id.source_tool(),
                    id.pipeline()
                );
            }
            Ok(())
        }
        "run" => {
            let which = args.get(1).ok_or("run needs a kernel name or 'all'")?;
            let opts = parse_options(
                cmd,
                &args[2..],
                &[Opt::Size, Opt::Threads, Opt::Trace, Opt::Metrics],
            )?;
            let ids: Vec<KernelId> = if which == "all" {
                KernelId::ALL.to_vec()
            } else {
                vec![which.parse()?]
            };
            let instrument = opts.trace.is_some() || opts.metrics.is_some();
            let recorder = instrument.then(TraceRecorder::new);
            let mut registry = MetricsRegistry::new();
            println!(
                "{:<11} {:>8} {:>12} {:>10}  ({} dataset, {} thread(s))",
                "kernel",
                "tasks",
                "elapsed",
                "checksum",
                opts.size().name(),
                opts.threads()
            );
            for id in ids {
                let kernel = prepare(id, opts.size());
                let stats = match &recorder {
                    Some(r) => run_parallel_instrumented(kernel.as_ref(), opts.threads(), r),
                    None => run_parallel(kernel.as_ref(), opts.threads()),
                };
                if let Some(ts) = &stats.task_stats {
                    registry.record_task_stats(id.name(), ts);
                }
                println!(
                    "{:<11} {:>8} {:>12} {:>10x}",
                    id.name(),
                    stats.tasks,
                    format!("{:.3}s", stats.elapsed.as_secs_f64()),
                    stats.checksum & 0xFFFF_FFFF
                );
            }
            if let (Some(r), Some(path)) = (&recorder, &opts.trace) {
                write_trace(r, path)?;
            }
            if let Some(path) = &opts.metrics {
                write_metrics(&registry, path)?;
            }
            Ok(())
        }
        "profile" => {
            let which = args.get(1).ok_or("profile needs a kernel name")?;
            let id: KernelId = which.parse()?;
            let opts = parse_options(
                cmd,
                &args[2..],
                &[Opt::Size, Opt::Threads, Opt::Trace, Opt::Metrics],
            )?;
            let threads = opts.threads.unwrap_or(2);
            let kernel = prepare(id, opts.size());
            let recorder = TraceRecorder::new();
            let stats = run_parallel_instrumented(kernel.as_ref(), threads, &recorder);
            let task_stats = stats.task_stats.as_ref().expect("instrumented run");
            println!(
                "profile {} ({} dataset, {} thread(s)): {} tasks in {:.3}s, checksum {:x}",
                id.name(),
                opts.size().name(),
                threads,
                stats.tasks,
                stats.elapsed.as_secs_f64(),
                stats.checksum & 0xFFFF_FFFF
            );
            print_task_stats(task_stats);
            if let Some(path) = &opts.trace {
                write_trace(&recorder, path)?;
            }
            if let Some(path) = &opts.metrics {
                let mut registry = MetricsRegistry::new();
                registry.record_task_stats(id.name(), task_stats);
                write_metrics(&registry, path)?;
            }
            Ok(())
        }
        "export" => {
            let dir = args.get(1).ok_or("export needs a target directory")?;
            let opts = parse_options(cmd, &args[2..], &[Opt::Size])?;
            let manifest =
                gb_suite::export::export_datasets(std::path::Path::new(dir), opts.size())
                    .map_err(|e| e.to_string())?;
            for (file, items) in manifest {
                println!("{dir}/{file}  ({items} records)");
            }
            Ok(())
        }
        "experiments" => {
            let opts = parse_options(cmd, &args[1..], &[Opt::Size, Opt::Json])?;
            let md = gb_suite::experiments::generate_markdown(opts.size());
            match &opts.json {
                Some(path) => {
                    std::fs::write(path, &md).map_err(|e| e.to_string())?;
                    eprintln!("wrote {path}");
                }
                None => println!("{md}"),
            }
            Ok(())
        }
        "report" => {
            let which = args.get(1).ok_or("report needs a name or 'all'")?;
            let opts = parse_options(
                cmd,
                &args[2..],
                &[Opt::Size, Opt::Json, Opt::Trace, Opt::Metrics],
            )?;
            let instrument = opts.trace.is_some() || opts.metrics.is_some();
            let recorder = instrument.then(TraceRecorder::new);
            let reports = generate(which, &opts, &recorder)?;
            for r in &reports {
                println!("{}", r.text);
                if let Some(dir) = &opts.json {
                    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                    let path = format!("{dir}/{}.json", r.name);
                    let body = serde_json::to_string_pretty(&r.json).map_err(|e| e.to_string())?;
                    std::fs::write(&path, body).map_err(|e| e.to_string())?;
                    eprintln!("wrote {path}");
                }
            }
            if let Some(r) = &recorder {
                if let Some(path) = &opts.trace {
                    write_trace(r, path)?;
                }
                if let Some(path) = &opts.metrics {
                    let mut registry = MetricsRegistry::new();
                    for (name, value) in r.counters() {
                        registry.counter_add(&name, value);
                    }
                    write_metrics(&registry, path)?;
                }
            }
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn generate(
    which: &str,
    opts: &Options,
    recorder: &Option<TraceRecorder>,
) -> Result<Vec<Report>, String> {
    let size = opts.size();
    let threads = [1, 2, 4, 8];
    let rec: &dyn Recorder = match recorder {
        Some(r) => r,
        None => &NullRecorder,
    };
    let needs_chars = matches!(which, "fig5" | "fig6" | "fig8" | "fig9" | "all");
    let chars = if needs_chars {
        Some(reports::characterize_all(size))
    } else {
        None
    };
    let one = |name: &str| -> Result<Report, String> {
        Ok(match name {
            "table1" => reports::table1(),
            "table2" => reports::table2(),
            "table3" => reports::table3(size),
            "table4" => reports::table4(size),
            "table5" => reports::table5(size),
            "fig3" => reports::fig3(size),
            "fig4" => reports::fig4(size),
            "fig5" => reports::fig5(chars.as_ref().expect("chars prepared")),
            "fig6" => reports::fig6(chars.as_ref().expect("chars prepared")),
            "fig7" => reports::fig7_traced(size, &threads, rec),
            "fig8" => reports::fig8(chars.as_ref().expect("chars prepared")),
            "fig9" => reports::fig9(chars.as_ref().expect("chars prepared")),
            other => return Err(format!("unknown report '{other}'")),
        })
    };
    if which == "all" {
        [
            "table1", "table2", "table3", "table4", "table5", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9",
        ]
        .iter()
        .map(|n| one(n))
        .collect()
    } else {
        Ok(vec![one(which)?])
    }
}
