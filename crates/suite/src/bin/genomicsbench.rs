//! The `genomicsbench` command-line harness.
//!
//! ```text
//! genomicsbench list
//! genomicsbench run [kernel|all] [--tier tiny|small|large] [--threads N]
//!                   [--trace FILE] [--metrics FILE] [--uarch]
//!                   [--manifest-out FILE] [--baseline FILE]
//! genomicsbench profile <kernel> [--tier T] [--threads N]
//!                   [--trace FILE] [--metrics FILE] [--manifest-out FILE]
//!                   [--flame FILE] [--flame-svg FILE]
//!                   [--uarch] [--uarch-budget N]
//! genomicsbench report <table1..table5|fig3..fig9|all>
//!                      [--tier T] [--json DIR] [--flame FILE]
//!                      [--flame-svg FILE] [--trace FILE]
//!                      [--metrics FILE] [--manifest-out FILE]
//! genomicsbench compare <baseline.json> <candidate.json>
//!                      [--baseline-dir DIR] [--diff-svg DIR]
//!                      [--json] [--tolerance FRAC] [--min-wall-ms N]
//!                      [--write-github-summary]
//! genomicsbench trend <manifest.json...> [--diff-svg DIR]
//!                      [--json] [--tolerance FRAC] [--min-wall-ms N]
//! ```
//!
//! Exit codes: `0` success, `1` a perf regression was detected
//! (`compare`, `trend`, or `run --baseline`), `2` usage or I/O error.

use gb_obs::manifest::{write_bytes_atomic, write_json_atomic};
use gb_obs::render::{format_delta, format_value};
use gb_obs::{
    compare, differential_svg, flamegraph_svg, mem, pointwise_min_baseline, CompareConfig,
    CompareReport, HistogramSummary, KernelRecord, MetricsRegistry, NullRecorder, Recorder,
    RenderConfig, RunManifest, StageAttribution, StageTree, TaskStats, TraceRecorder, TrendReport,
    Verdict, SCHEMA_VERSION,
};
use gb_substrate::SubstrateCache;
use gb_suite::dataset::DatasetSize;
use gb_suite::kernels::{
    prepare_cached, run_parallel, run_parallel_instrumented, total_work, warm_substrates,
    Characterization, DpEngine, KernelId, RunStats, WarmOutcome,
};
use gb_suite::reports::{self, Report};
use std::path::Path;
use std::process::ExitCode;

/// With the `mem-profile` feature the binary routes every allocation
/// through the tracking allocator, so per-kernel memory spans and the
/// peak-heap report columns carry real numbers. Default builds use the
/// system allocator untouched.
#[cfg(feature = "mem-profile")]
#[global_allocator]
static ALLOC: mem::TrackingAllocator = mem::TrackingAllocator;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Outcome::Clean) => ExitCode::SUCCESS,
        Ok(Outcome::Regressed) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// How a successfully-parsed invocation ended.
enum Outcome {
    /// No gate tripped.
    Clean,
    /// A perf-regression gate tripped (exit code 1).
    Regressed,
}

const USAGE: &str = "usage:
  genomicsbench list
  genomicsbench run [kernels|all] [--tier T] [--threads N] [--dp-engine E]
                    [--trace FILE] [--metrics FILE] [--uarch]
                    [--manifest-out FILE] [--baseline FILE]
                    [--substrate-cache DIR] [--no-cache]
  genomicsbench profile <kernel> [--tier T] [--threads N] [--dp-engine E]
                    [--trace FILE] [--metrics FILE] [--manifest-out FILE]
                    [--flame FILE] [--flame-svg FILE]
                    [--uarch] [--uarch-budget N]
                    [--substrate-cache DIR] [--no-cache]
  genomicsbench report <name|all> [--tier T] [--json DIR] [--trace FILE]
                    [--metrics FILE] [--manifest-out FILE] [--flame FILE]
                    [--flame-svg FILE]
  genomicsbench compare <baseline.json> <candidate.json> [--json]
                    [--baseline-dir DIR] [--diff-svg DIR]
                    [--tolerance FRAC] [--min-wall-ms N]
                    [--write-github-summary]
  genomicsbench trend <manifest.json...> [--json] [--diff-svg DIR]
                    [--tolerance FRAC] [--min-wall-ms N]
  genomicsbench experiments [--tier T] [--json FILE]
  genomicsbench export <dir> [--tier T]
    tiers: tiny small large (default small); --size is an alias of --tier
    names: table1 table2 table3 table4 table5 fig3 fig4 fig5 fig6 fig7 fig8 fig9
    --json is a directory for 'report' (one <name>.json per report), an output
      file for 'experiments', and a flag for 'compare' (JSON to stdout);
      --trace writes a Chrome/Perfetto trace, --metrics a JSON metrics dump.
    --manifest-out writes a schema-versioned run manifest; 'run --baseline'
      compares the fresh manifest against a saved one and exits 1 on
      regression. --uarch adds simulated hardware counters to the metrics.
    --dp-engine picks the execution engine of the DP-motif kernels —
      bsw, phmm, spoa, abea: 'simd' (default; i16 SoA lockstep bsw, i16
      row-sweep spoa, wavefront f32 phmm, contiguous-band f32 abea) or
      'scalar' (paper-faithful kernels). Results are bit-identical
      either way.
    --flame writes a collapsed-stack file (one 'frame;frame VALUE' line
      per stack, flamegraph.pl/inferno-compatible); wall values are in
      microseconds, and with mem-profile builds a '<FILE>.mem' sibling
      carries peak-heap bytes. 'profile --uarch' samples a hardware
      characterization (--uarch-budget caps the sampled tasks) and
      annotates the kernel's stage-tree frame with IPC/miss rates.
    --flame-svg renders the stage tree as a self-contained SVG
      flamegraph (no external scripts, fonts, or links; frame widths are
      proportional to inclusive time, hover a frame for exact values);
      with mem-profile builds a '<stem>.mem.svg' sibling shows peak heap.
    'trend' orders >=1 manifests into per-kernel time series grouped by
      tier/threads/dp-engine, draws unicode sparklines, and exits 1 when
      the latest run regressed against the best earlier run.
    'compare --baseline-dir DIR' replaces the <baseline.json> argument:
      the candidate gates against the pointwise minimum (per kernel: min
      wall, max throughput, min memory peaks) over every comparable
      manifest in DIR — same tier/threads/dp-engine, candidate's own
      file excluded — so one lucky-slow baseline cannot mask a
      regression.
    When a kernel's wall time regresses and both manifests carry stage
      data (schema >= 1.3), 'compare' and 'trend' print a per-stage
      attribution table (which stage's self time grew); --diff-svg DIR
      additionally writes a differential flamegraph per regressed kernel
      (red = slower, blue = faster, gray = added/removed frames).
    'compare --write-github-summary' appends the table as markdown to
      $GITHUB_STEP_SUMMARY (no-op when the variable is unset), including
      the top regressing stages per kernel when attribution is
      available.
    --substrate-cache DIR keeps each kernel's deterministic prepare
      product (FM-indexes, region tasks, POA windows, NN weights, ...) in
      a checksum-verified on-disk store, so repeat runs skip the build;
      entries are schema-versioned and any corrupt or stale entry is
      silently rebuilt. Within one invocation substrates are always
      shared in-process; --no-cache disables both layers. Cold builds of
      a multi-kernel run are warmed in parallel across the worker pool.
      The manifest records prepare_wall_ns and cache_hit per kernel
      (schema >= 1.4, informational -- never gated on).
    'run' also accepts a comma-separated kernel list, e.g. run bsw,phmm.
    Each subcommand rejects options it does not use.";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Opt {
    Tier,
    Threads,
    DpEngine,
    Json,
    Trace,
    Metrics,
    ManifestOut,
    Baseline,
    Uarch,
    UarchBudget,
    Flame,
    FlameSvg,
    SubstrateCache,
    NoCache,
}

impl Opt {
    fn flag(self) -> &'static str {
        match self {
            Opt::Tier => "--tier",
            Opt::Threads => "--threads",
            Opt::DpEngine => "--dp-engine",
            Opt::Json => "--json",
            Opt::Trace => "--trace",
            Opt::Metrics => "--metrics",
            Opt::ManifestOut => "--manifest-out",
            Opt::Baseline => "--baseline",
            Opt::Uarch => "--uarch",
            Opt::UarchBudget => "--uarch-budget",
            Opt::Flame => "--flame",
            Opt::FlameSvg => "--flame-svg",
            Opt::SubstrateCache => "--substrate-cache",
            Opt::NoCache => "--no-cache",
        }
    }

    /// Whether the flag takes a value (`--uarch` and `--no-cache` are
    /// bare switches).
    fn takes_value(self) -> bool {
        !matches!(self, Opt::Uarch | Opt::NoCache)
    }
}

#[derive(Default)]
struct Options {
    size: Option<DatasetSize>,
    threads: Option<usize>,
    dp_engine: Option<DpEngine>,
    json: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    manifest_out: Option<String>,
    baseline: Option<String>,
    uarch: bool,
    uarch_budget: Option<usize>,
    flame: Option<String>,
    flame_svg: Option<String>,
    substrate_cache: Option<String>,
    no_cache: bool,
}

impl Options {
    fn size(&self) -> DatasetSize {
        self.size.unwrap_or(DatasetSize::Small)
    }

    fn threads(&self) -> usize {
        self.threads.unwrap_or(1)
    }

    fn dp_engine(&self) -> DpEngine {
        self.dp_engine.unwrap_or_default()
    }
}

/// Builds the substrate cache an invocation asked for: `--no-cache`
/// disables caching entirely, `--substrate-cache DIR` adds the on-disk
/// store, and the default is in-process-only sharing.
fn build_cache(opts: &Options) -> Result<SubstrateCache, String> {
    if opts.no_cache {
        if opts.substrate_cache.is_some() {
            return Err("--no-cache and --substrate-cache are mutually exclusive".into());
        }
        return Ok(SubstrateCache::disabled());
    }
    match &opts.substrate_cache {
        Some(dir) => SubstrateCache::with_store(Path::new(dir))
            .map_err(|e| format!("opening substrate cache {dir}: {e}")),
        None => Ok(SubstrateCache::in_process()),
    }
}

/// Parses options, accepting only the flags `cmd` supports — a flag that
/// *some other* subcommand accepts produces a targeted error instead of
/// being silently ignored.
fn parse_options(cmd: &str, args: &[String], allowed: &[Opt]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let all = [
            Opt::Tier,
            Opt::Threads,
            Opt::DpEngine,
            Opt::Json,
            Opt::Trace,
            Opt::Metrics,
            Opt::ManifestOut,
            Opt::Baseline,
            Opt::Uarch,
            Opt::UarchBudget,
            Opt::Flame,
            Opt::FlameSvg,
            Opt::SubstrateCache,
            Opt::NoCache,
        ];
        // --size predates --tier; both name the dataset tier.
        let canonical = if a == "--size" { "--tier" } else { a.as_str() };
        let Some(opt) = all.iter().copied().find(|o| o.flag() == canonical) else {
            return Err(format!("unknown option '{a}'"));
        };
        if !allowed.contains(&opt) {
            return Err(format!("'{cmd}' does not accept {}", opt.flag()));
        }
        if !opt.takes_value() {
            match opt {
                Opt::Uarch => opts.uarch = true,
                Opt::NoCache => opts.no_cache = true,
                _ => unreachable!("only bare switches reach here"),
            }
            continue;
        }
        let v = it
            .next()
            .ok_or_else(|| format!("{} needs a value", opt.flag()))?;
        match opt {
            Opt::Tier => opts.size = Some(v.parse()?),
            Opt::Threads => opts.threads = Some(v.parse::<usize>().map_err(|e| e.to_string())?),
            Opt::DpEngine => opts.dp_engine = Some(v.parse()?),
            Opt::Json => opts.json = Some(v.clone()),
            Opt::Trace => opts.trace = Some(v.clone()),
            Opt::Metrics => opts.metrics = Some(v.clone()),
            Opt::ManifestOut => opts.manifest_out = Some(v.clone()),
            Opt::Baseline => opts.baseline = Some(v.clone()),
            Opt::UarchBudget => {
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --uarch-budget '{v}' (want a task count)"))?;
                if n == 0 {
                    return Err("--uarch-budget must be at least 1".into());
                }
                opts.uarch_budget = Some(n);
            }
            Opt::Flame => opts.flame = Some(v.clone()),
            Opt::FlameSvg => opts.flame_svg = Some(v.clone()),
            Opt::SubstrateCache => opts.substrate_cache = Some(v.clone()),
            Opt::Uarch | Opt::NoCache => unreachable!("bare switch"),
        }
    }
    Ok(opts)
}

fn write_trace(recorder: &TraceRecorder, path: &str) -> Result<(), String> {
    recorder
        .trace()
        .write_to_file(Path::new(path))
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {path} ({} events)", recorder.trace().len());
    Ok(())
}

fn write_metrics(registry: &MetricsRegistry, path: &str) -> Result<(), String> {
    write_json_atomic(Path::new(path), &registry.to_json())
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a throughput in its paper unit: `1.23 Gcells/s`.
fn format_throughput(per_s: f64, unit: &str) -> String {
    let (scaled, prefix) = if per_s >= 1e9 {
        (per_s / 1e9, "G")
    } else if per_s >= 1e6 {
        (per_s / 1e6, "M")
    } else if per_s >= 1e3 {
        (per_s / 1e3, "k")
    } else {
        (per_s, "")
    };
    format!("{scaled:.2} {prefix}{unit}/s")
}

fn print_task_stats(stats: &TaskStats) {
    println!(
        "task latency: p50 {}  p90 {}  p99 {}  max {}  mean {}",
        format_ns(stats.p50_ns),
        format_ns(stats.p90_ns),
        format_ns(stats.p99_ns),
        format_ns(stats.max_ns),
        format_ns(stats.mean_ns),
    );
    println!(
        "{:<7} {:>7} {:>12} {:>12} {:>7}",
        "worker", "tasks", "busy", "idle", "util"
    );
    for w in &stats.workers {
        println!(
            "{:<7} {:>7} {:>12} {:>12} {:>6.1}%",
            w.worker,
            w.tasks,
            format_ns(w.busy_ns),
            format_ns(w.idle_ns),
            w.utilization() * 100.0
        );
    }
    println!("overall utilization: {:.1}%", stats.utilization * 100.0);
}

fn latency_summary(ts: &TaskStats) -> HistogramSummary {
    HistogramSummary {
        count: ts.count,
        mean: ts.mean_ns as f64,
        p50: ts.p50_ns,
        p90: ts.p90_ns,
        p99: ts.p99_ns,
        max: ts.max_ns,
    }
}

/// Builds one kernel's manifest record from its run and exports the
/// throughput/work metrics into the registry.
fn kernel_record(
    id: KernelId,
    kernel: &dyn gb_suite::Kernel,
    stats: &RunStats,
    memory: Option<gb_obs::MemoryRecord>,
    registry: &mut MetricsRegistry,
) -> KernelRecord {
    let wall_ns = stats.elapsed.as_nanos() as u64;
    let work_total = total_work(kernel);
    let throughput_per_s = if wall_ns > 0 {
        work_total as f64 / (wall_ns as f64 / 1e9)
    } else {
        0.0
    };
    registry.counter_add(&format!("{}.work_total", id.name()), work_total);
    registry.set_gauge(&format!("{}.throughput_per_s", id.name()), throughput_per_s);
    if let Some(m) = &memory {
        registry.set_gauge(
            &format!("{}.peak_heap_bytes", id.name()),
            m.peak_bytes as f64,
        );
    }
    KernelRecord {
        wall_ns,
        tasks: stats.tasks as u64,
        checksum: stats.checksum,
        work_unit: id.work_unit().to_string(),
        work_total,
        throughput_per_s,
        latency: stats.task_stats.as_ref().map(latency_summary),
        utilization: stats.task_stats.as_ref().map(|ts| ts.utilization),
        memory,
        stages: None,
        prepare_wall_ns: None,
        cache_hit: None,
    }
}

fn save_manifest(manifest: &RunManifest, path: &str) -> Result<(), String> {
    manifest
        .save(Path::new(path))
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {path} (schema {SCHEMA_VERSION})");
    Ok(())
}

fn load_manifest(path: &str) -> Result<RunManifest, String> {
    RunManifest::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

/// Renders a compare report as an aligned human table.
fn print_compare_table(report: &CompareReport) {
    let value = |metric: &str, v: f64| match metric {
        "wall_time" | "prepare_wall" => format!("{:.2}ms", v / 1e6),
        "peak_memory" | "task_peak_memory" => mem::format_bytes(v as u64),
        _ => format!("{v:.3e}/s"),
    };
    let rows: Vec<Vec<String>> = report
        .deltas
        .iter()
        .map(|d| {
            vec![
                d.kernel.clone(),
                d.metric.to_string(),
                value(d.metric, d.base),
                value(d.metric, d.cand),
                format!("{:+.1}%", d.rel_change * 100.0),
                d.verdict.label().to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        reports::format_table(
            &[
                "kernel",
                "metric",
                "baseline",
                "candidate",
                "delta",
                "verdict"
            ],
            &rows
        )
    );
    for k in &report.only_in_baseline {
        println!("note: kernel '{k}' present only in baseline");
    }
    for k in &report.only_in_candidate {
        println!("note: kernel '{k}' present only in candidate");
    }
    let regressions: Vec<&str> = report
        .regressions()
        .map(|d| d.kernel.as_str())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    if regressions.is_empty() {
        let improved = report
            .deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Improved)
            .count();
        println!(
            "no regressions ({} metrics compared, {} improved)",
            report.deltas.len(),
            improved
        );
    } else {
        println!("REGRESSED kernels: {}", regressions.join(", "));
    }
}

/// Runs the gate for `run --baseline` / `compare`, returning the exit
/// outcome.
fn gate(report: &CompareReport) -> Outcome {
    if report.has_regressions() {
        Outcome::Regressed
    } else {
        Outcome::Clean
    }
}

/// Prints a stage tree as its self-times table (one indented row per
/// frame, heaviest-first within each level).
fn print_stage_tree(tree: &StageTree) {
    if tree.is_empty() {
        return;
    }
    let bytes = tree.unit() == "bytes";
    let fmt = |v: u64| {
        if bytes {
            mem::format_bytes(v)
        } else {
            format_ns(v)
        }
    };
    println!("stage tree ({}):", if bytes { "peak heap" } else { "wall" });
    let rows: Vec<Vec<String>> = tree
        .rows()
        .iter()
        .map(|r| {
            vec![
                format!("{}{}", "  ".repeat(r.depth), r.name),
                fmt(r.total),
                fmt(r.self_value),
                r.note.clone().unwrap_or_default(),
            ]
        })
        .collect();
    print!(
        "{}",
        reports::format_table(&["stage", "total", "self", "notes"], &rows)
    );
}

/// Writes `tree` as a collapsed-stack file; `div` scales raw values
/// (1000 turns nanoseconds into the microseconds flamegraph convention,
/// 1 leaves bytes untouched).
fn write_flame(tree: &StageTree, div: u64, path: &str) -> Result<(), String> {
    let folded = tree.to_collapsed(div);
    write_bytes_atomic(Path::new(path), folded.as_bytes())
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {path} ({} stacks)", folded.lines().count());
    Ok(())
}

/// Writes a rendered SVG document atomically.
fn write_svg(svg: &str, path: &str) -> Result<(), String> {
    write_bytes_atomic(Path::new(path), svg.as_bytes())
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}

/// The `.mem.svg` sibling of a wall-time SVG path: `bsw.svg` →
/// `bsw.mem.svg` (a path without the extension just appends it).
fn mem_svg_sibling(path: &str) -> String {
    match path.strip_suffix(".svg") {
        Some(stem) => format!("{stem}.mem.svg"),
        None => format!("{path}.mem.svg"),
    }
}

/// How many ranked stage rows the attribution table and GitHub summary
/// show per regressed kernel.
const ATTRIBUTION_TABLE_ROWS: usize = 5;
const ATTRIBUTION_SUMMARY_ROWS: usize = 3;

/// Prints one kernel's stage attribution as an aligned table, worst
/// self-time regressor first.
fn print_attribution(a: &StageAttribution) {
    println!(
        "stage attribution for {} (root {}):",
        a.kernel,
        format_delta("ns", a.root_delta_ns)
    );
    let rows: Vec<Vec<String>> = a
        .rows
        .iter()
        .take(ATTRIBUTION_TABLE_ROWS)
        .map(|r| {
            vec![
                r.path.clone(),
                format_value("ns", r.base_total),
                format_value("ns", r.cand_total),
                format_delta("ns", r.self_delta),
                format_delta("ns", r.total_delta),
                r.status.label().to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        reports::format_table(
            &[
                "stage",
                "baseline",
                "candidate",
                "self Δ",
                "total Δ",
                "status"
            ],
            &rows
        )
    );
}

/// Writes one differential flamegraph per attributed (regressed) kernel
/// into `dir`, named `<kernel><suffix>.svg`.
fn write_diff_svgs(
    attributions: &[&StageAttribution],
    dir: &str,
    suffix: &str,
) -> Result<(), String> {
    if attributions.is_empty() {
        eprintln!("note: no stage attributions to render; --diff-svg wrote nothing");
        return Ok(());
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    for a in attributions {
        let cfg = RenderConfig::wall(&format!("{} — candidate vs baseline", a.kernel));
        let path = format!("{dir}/{}{suffix}.svg", a.kernel);
        write_svg(&differential_svg(&a.to_diff(), &cfg), &path)?;
    }
    Ok(())
}

/// Loads every parseable manifest in `dir` whose context (tier,
/// threads, dp-engine) matches the candidate's. The candidate's own
/// file is excluded so `compare --baseline-dir results/` cannot gate a
/// run against itself; non-manifest JSON in the directory (report
/// artifacts, metrics dumps) is skipped. Entries load in path order so
/// min-fold ties resolve deterministically.
fn load_baseline_dir(
    dir: &str,
    cand_path: &str,
    cand: &RunManifest,
) -> Result<Vec<RunManifest>, String> {
    let cand_canon = std::fs::canonicalize(cand_path).ok();
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|s| s.to_str()) == Some("json"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        if cand_canon.is_some() && std::fs::canonicalize(&path).ok() == cand_canon {
            continue;
        }
        let Ok(m) = RunManifest::load(&path) else {
            continue;
        };
        if m.tier == cand.tier && m.threads == cand.threads && m.dp_engine == cand.dp_engine {
            out.push(m);
        }
    }
    if out.is_empty() {
        return Err(format!(
            "no comparable baseline manifests in {dir} (need tier '{}', {} thread(s), {} engine)",
            cand.tier,
            cand.threads,
            cand.dp_engine.as_deref().unwrap_or("any")
        ));
    }
    Ok(out)
}

/// Prints a trend report as per-context sparkline tables.
fn print_trend(report: &TrendReport) {
    if report.groups.is_empty() {
        println!("no runs to trend");
        return;
    }
    for g in &report.groups {
        let labels: Vec<String> = g.runs.iter().map(|r| r.label()).collect();
        println!(
            "{} — {} run(s): {}",
            g.context,
            g.runs.len(),
            labels.join(" → ")
        );
        let rows: Vec<Vec<String>> = g
            .kernels
            .iter()
            .map(|k| {
                vec![
                    k.kernel.clone(),
                    k.sparkline.clone(),
                    k.best_prev_ns.map(format_ns).unwrap_or_default(),
                    k.latest_ns.map(format_ns).unwrap_or_default(),
                    format!("{:+.1}%", k.rel_change * 100.0),
                    k.verdict.label().to_string(),
                ]
            })
            .collect();
        print!(
            "{}",
            reports::format_table(
                &["kernel", "trend", "best", "latest", "delta", "verdict"],
                &rows
            )
        );
        println!();
    }
    let regressed: Vec<String> = report
        .regressions()
        .map(|(ctx, k)| format!("{} ({ctx})", k.kernel))
        .collect();
    if regressed.is_empty() {
        println!("no regressions against best-previous runs");
    } else {
        println!("REGRESSED series: {}", regressed.join(", "));
    }
}

/// Renders a compare report as a GitHub-flavoured markdown section.
fn github_summary_markdown(
    report: &CompareReport,
    base_path: &str,
    cand_path: &str,
    cfg: &CompareConfig,
) -> String {
    let value = |metric: &str, v: f64| match metric {
        "wall_time" | "prepare_wall" => format!("{:.2}ms", v / 1e6),
        "peak_memory" | "task_peak_memory" => mem::format_bytes(v as u64),
        _ => format!("{v:.3e}/s"),
    };
    let mut md = String::new();
    md.push_str("## Manifest compare\n\n");
    md.push_str(&format!(
        "`{cand_path}` (candidate) vs `{base_path}` (baseline), tolerance {:.0}%\n\n",
        cfg.rel_tolerance * 100.0
    ));
    md.push_str("| kernel | metric | baseline | candidate | delta | verdict |\n");
    md.push_str("|---|---|---|---|---|---|\n");
    for d in &report.deltas {
        md.push_str(&format!(
            "| {} | {} | {} | {} | {:+.1}% | {} |\n",
            d.kernel,
            d.metric,
            value(d.metric, d.base),
            value(d.metric, d.cand),
            d.rel_change * 100.0,
            d.verdict.label()
        ));
    }
    md.push('\n');
    if report.has_regressions() {
        md.push_str("**Regression gate tripped.**\n");
    } else {
        md.push_str(&format!(
            "No regressions ({} metrics compared).\n",
            report.deltas.len()
        ));
    }
    for a in &report.attributions {
        md.push_str(&format!(
            "\n### `{}` stage attribution (root {})\n\n",
            a.kernel,
            format_delta("ns", a.root_delta_ns)
        ));
        md.push_str("| stage | self Δ | total Δ | status |\n|---|---|---|---|\n");
        for r in a.rows.iter().take(ATTRIBUTION_SUMMARY_ROWS) {
            md.push_str(&format!(
                "| `{}` | {} | {} | {} |\n",
                r.path,
                format_delta("ns", r.self_delta),
                format_delta("ns", r.total_delta),
                r.status.label()
            ));
        }
    }
    md
}

/// Appends `md` to the file `$GITHUB_STEP_SUMMARY` points at; outside
/// GitHub Actions (variable unset or empty) this is a noted no-op so the
/// same command line works locally.
fn append_github_summary(md: &str) -> Result<(), String> {
    match std::env::var("GITHUB_STEP_SUMMARY") {
        Ok(path) if !path.is_empty() => {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| format!("opening {path}: {e}"))?;
            f.write_all(md.as_bytes())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("appended compare summary to {path}");
            Ok(())
        }
        _ => {
            eprintln!("note: $GITHUB_STEP_SUMMARY not set; summary not written");
            Ok(())
        }
    }
}

fn run(args: &[String]) -> Result<Outcome, String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    match cmd.as_str() {
        "list" => {
            parse_options(cmd, &args[1..], &[])?;
            println!("{:<11} {:<22} pipeline", "kernel", "source tool");
            for id in KernelId::ALL {
                println!(
                    "{:<11} {:<22} {}",
                    id.name(),
                    id.source_tool(),
                    id.pipeline()
                );
            }
            Ok(Outcome::Clean)
        }
        "run" => {
            // The kernel argument is optional: `run --tier tiny` runs
            // the full suite, matching the manifest/CI workflow.
            let (which, rest) = match args.get(1) {
                Some(a) if !a.starts_with("--") => (a.as_str(), &args[2..]),
                _ => ("all", &args[1..]),
            };
            let opts = parse_options(
                cmd,
                rest,
                &[
                    Opt::Tier,
                    Opt::Threads,
                    Opt::DpEngine,
                    Opt::Trace,
                    Opt::Metrics,
                    Opt::ManifestOut,
                    Opt::Baseline,
                    Opt::Uarch,
                    Opt::SubstrateCache,
                    Opt::NoCache,
                ],
            )?;
            let ids: Vec<KernelId> = if which == "all" {
                KernelId::ALL.to_vec()
            } else {
                // Comma-separated kernel lists (`run bsw,phmm`) let CI
                // gate just the DP kernels without a full-suite run.
                which
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<Vec<_>, _>>()?
            };
            let instrument = opts.trace.is_some()
                || opts.metrics.is_some()
                || opts.manifest_out.is_some()
                || opts.baseline.is_some();
            let cache = build_cache(&opts)?;
            // Warm pre-pass: build (or load) every requested substrate up
            // front, overlapping cold builds across the worker pool. The
            // per-kernel outcome feeds the manifest's prepare attribution.
            let warm: std::collections::HashMap<KernelId, WarmOutcome> =
                warm_substrates(&ids, opts.size(), &cache, opts.threads())
                    .into_iter()
                    .map(|w| (w.id, w))
                    .collect();
            let recorder = instrument.then(TraceRecorder::new);
            let mut registry = MetricsRegistry::new();
            let mut manifest = RunManifest::new("run", opts.size().name(), opts.threads());
            manifest.dp_engine = Some(opts.dp_engine().name().to_string());
            println!(
                "{:<11} {:>8} {:>12} {:>10} {:>18} {:>10} {:>6}  ({} dataset, {} thread(s), {} dp engine)",
                "kernel",
                "tasks",
                "elapsed",
                "checksum",
                "throughput",
                "prepare",
                "cache",
                opts.size().name(),
                opts.threads(),
                opts.dp_engine().name()
            );
            for id in ids {
                // Bookmark the shared trace stream so this kernel's
                // spans can be sliced out afterwards for its stage tree.
                let mark = recorder.as_ref().map(|r| r.event_count());
                let span = mem::enabled().then(mem::MemSpan::enter);
                let (kernel, pstats) = prepare_cached(id, opts.size(), opts.dp_engine(), &cache);
                // The warm pre-pass already did (and timed) the heavy
                // build or load; after it, `prepare_cached` is a memo hit
                // plus a cheap instantiate. Attribute the true cost.
                let (prepare_wall, cache_hit) = match warm.get(&id) {
                    Some(w) => (w.wall + pstats.wall, w.cache_hit),
                    None => (pstats.wall, pstats.cache_hit),
                };
                let stats = match &recorder {
                    Some(r) => run_parallel_instrumented(kernel.as_ref(), opts.threads(), r),
                    // mem-profile builds always take the instrumented
                    // path (NullRecorder: no tracing overhead) so the
                    // pool collects per-task heap attribution.
                    None if mem::enabled() => {
                        run_parallel_instrumented(kernel.as_ref(), opts.threads(), &NullRecorder)
                    }
                    None => run_parallel(kernel.as_ref(), opts.threads()),
                };
                let memory = span.map(|s| {
                    s.exit_with_pool(stats.task_stats.as_ref().and_then(|ts| ts.memory.as_ref()))
                });
                if let Some(ts) = &stats.task_stats {
                    registry.record_task_stats(id.name(), ts);
                }
                if opts.uarch {
                    let c: Characterization = gb_suite::kernels::characterize(
                        kernel.as_ref(),
                        reports::characterize_budget(id, opts.size()),
                    );
                    gb_uarch::export::export_characterization(
                        &mut registry,
                        id.name(),
                        &c.mix,
                        &c.cache,
                        &c.topdown,
                        c.bpki,
                    );
                }
                if instrument {
                    // Engine-specific gauges (e.g. bsw dead-slot fractions
                    // before/after length sorting) ride into the metrics
                    // dump and manifest; skipped on bare timed runs since
                    // gathering them replays the kernel.
                    for (name, value) in kernel.export_gauges() {
                        registry.set_gauge(&name, value);
                    }
                }
                let mut record = kernel_record(id, kernel.as_ref(), &stats, memory, &mut registry);
                record.prepare_wall_ns = Some(prepare_wall.as_nanos() as u64);
                record.cache_hit = Some(cache_hit);
                if let (Some(r), Some(mark)) = (&recorder, mark) {
                    // Manifests carry the per-kernel stage tree (schema
                    // 1.3) so a later `compare` can attribute any
                    // regression to the stage that slowed down.
                    let tree = StageTree::from_trace(&r.trace_from(mark), "ns")
                        .into_rooted(id.name(), record.wall_ns);
                    record.set_stage_tree(&tree);
                }
                println!(
                    "{:<11} {:>8} {:>12} {:>10x} {:>18} {:>10} {:>6}",
                    id.name(),
                    stats.tasks,
                    format!("{:.3}s", stats.elapsed.as_secs_f64()),
                    stats.checksum & 0xFFFF_FFFF,
                    format_throughput(record.throughput_per_s, id.work_unit()),
                    format_ns(prepare_wall.as_nanos() as u64),
                    if !cache.is_enabled() {
                        "off"
                    } else if cache_hit {
                        "hit"
                    } else {
                        "cold"
                    },
                );
                manifest.add_kernel(id.name(), record);
            }
            if let (Some(r), Some(path)) = (&recorder, &opts.trace) {
                write_trace(r, path)?;
            }
            if instrument {
                manifest.metrics = registry.to_json();
            }
            if let Some(path) = &opts.metrics {
                write_metrics(&registry, path)?;
            }
            if let Some(path) = &opts.manifest_out {
                save_manifest(&manifest, path)?;
            }
            if let Some(path) = &opts.baseline {
                let baseline = load_manifest(path)?;
                let report = compare::compare(&baseline, &manifest, &CompareConfig::default());
                println!();
                println!("comparison against baseline {path}:");
                print_compare_table(&report);
                return Ok(gate(&report));
            }
            Ok(Outcome::Clean)
        }
        "profile" => {
            let which = args.get(1).ok_or("profile needs a kernel name")?;
            let id: KernelId = which.parse()?;
            let opts = parse_options(
                cmd,
                &args[2..],
                &[
                    Opt::Tier,
                    Opt::Threads,
                    Opt::DpEngine,
                    Opt::Trace,
                    Opt::Metrics,
                    Opt::ManifestOut,
                    Opt::Flame,
                    Opt::FlameSvg,
                    Opt::Uarch,
                    Opt::UarchBudget,
                    Opt::SubstrateCache,
                    Opt::NoCache,
                ],
            )?;
            let threads = opts.threads.unwrap_or(2);
            let cache = build_cache(&opts)?;
            let span = mem::enabled().then(mem::MemSpan::enter);
            let (kernel, pstats) = prepare_cached(id, opts.size(), opts.dp_engine(), &cache);
            let recorder = TraceRecorder::new();
            let stats = run_parallel_instrumented(kernel.as_ref(), threads, &recorder);
            let memory = span.map(|s| {
                s.exit_with_pool(stats.task_stats.as_ref().and_then(|ts| ts.memory.as_ref()))
            });
            let task_stats = stats.task_stats.as_ref().expect("instrumented run");
            println!(
                "profile {} ({} dataset, {} thread(s), {} dp engine): {} tasks in {:.3}s, checksum {:x}",
                id.name(),
                opts.size().name(),
                threads,
                opts.dp_engine().name(),
                stats.tasks,
                stats.elapsed.as_secs_f64(),
                stats.checksum & 0xFFFF_FFFF
            );
            print_task_stats(task_stats);
            if let Some(m) = &memory {
                println!(
                    "heap: peak {}  end {}  allocs {}  frees {}",
                    mem::format_bytes(m.peak_bytes),
                    mem::format_bytes(m.end_bytes),
                    m.allocs,
                    m.frees
                );
                if let (Some(max), Some(mean)) = (m.task_peak_max_bytes, m.task_peak_mean_bytes) {
                    println!(
                        "task heap: peak(max) {}  peak(mean) {}",
                        mem::format_bytes(max),
                        mem::format_bytes(mean)
                    );
                }
            }
            let mut registry = MetricsRegistry::new();
            registry.record_task_stats(id.name(), task_stats);
            for (name, value) in kernel.export_gauges() {
                registry.set_gauge(&name, value);
            }
            let mut record = kernel_record(id, kernel.as_ref(), &stats, memory, &mut registry);
            record.prepare_wall_ns = Some(pstats.wall.as_nanos() as u64);
            record.cache_hit = Some(pstats.cache_hit);
            println!(
                "throughput: {}",
                format_throughput(record.throughput_per_s, id.work_unit())
            );
            println!(
                "prepare: {} ({})",
                format_ns(pstats.wall.as_nanos() as u64),
                if !cache.is_enabled() {
                    "cache off"
                } else if pstats.cache_hit {
                    "cache hit"
                } else {
                    "cold build"
                }
            );
            // Profile analytics: fold the task spans into a per-kernel
            // stage tree. The kernel root is pinned to the measured wall
            // time so the frame's self value is scheduler overhead (wall
            // minus worker busy time at 1 thread; at N threads the task
            // child carries CPU time, which legitimately exceeds wall).
            let wall_ns = stats.elapsed.as_nanos() as u64;
            let mut tree =
                StageTree::from_trace(&recorder.trace(), "ns").into_rooted(id.name(), wall_ns);
            if opts.uarch || opts.uarch_budget.is_some() {
                // Sampled uarch characterization: replay up to the budget
                // of tasks through the instrumented probe and pin the
                // derived rates onto the kernel's frame.
                let budget = opts
                    .uarch_budget
                    .unwrap_or_else(|| reports::characterize_budget(id, opts.size()));
                let c: Characterization = gb_suite::kernels::characterize(kernel.as_ref(), budget);
                gb_uarch::export::export_characterization(
                    &mut registry,
                    id.name(),
                    &c.mix,
                    &c.cache,
                    &c.topdown,
                    c.bpki,
                );
                let note = gb_uarch::export::frame_annotation(&c.cache, &c.topdown, c.bpki);
                println!("uarch sample ({} task(s)): {note}", c.tasks_sampled);
                tree.annotate(&[id.name()], &note);
            }
            print_stage_tree(&tree);
            record.set_stage_tree(&tree);
            if let Some(path) = &opts.flame {
                write_flame(&tree, 1_000, path)?;
                if let Some(m) = &memory {
                    let mem_tree = StageTree::from_kernel_memory([(id.name(), m)]);
                    write_flame(&mem_tree, 1, &format!("{path}.mem"))?;
                }
            }
            if let Some(path) = &opts.flame_svg {
                let subtitle = format!(
                    "{} · {} tier · {} thread(s) · {} engine",
                    id.name(),
                    opts.size().name(),
                    threads,
                    opts.dp_engine().name()
                );
                write_svg(&flamegraph_svg(&tree, &RenderConfig::wall(&subtitle)), path)?;
                if let Some(m) = &memory {
                    let mem_tree = StageTree::from_kernel_memory([(id.name(), m)]);
                    write_svg(
                        &flamegraph_svg(&mem_tree, &RenderConfig::memory(&subtitle)),
                        &mem_svg_sibling(path),
                    )?;
                }
            }
            if let Some(path) = &opts.trace {
                write_trace(&recorder, path)?;
            }
            if let Some(path) = &opts.metrics {
                write_metrics(&registry, path)?;
            }
            if let Some(path) = &opts.manifest_out {
                let mut manifest = RunManifest::new("profile", opts.size().name(), threads);
                manifest.dp_engine = Some(opts.dp_engine().name().to_string());
                manifest.metrics = registry.to_json();
                manifest.add_kernel(id.name(), record);
                save_manifest(&manifest, path)?;
            }
            Ok(Outcome::Clean)
        }
        "export" => {
            let dir = args.get(1).ok_or("export needs a target directory")?;
            let opts = parse_options(cmd, &args[2..], &[Opt::Tier])?;
            let manifest = gb_suite::export::export_datasets(Path::new(dir), opts.size())
                .map_err(|e| e.to_string())?;
            for (file, items) in manifest {
                println!("{dir}/{file}  ({items} records)");
            }
            Ok(Outcome::Clean)
        }
        "experiments" => {
            let opts = parse_options(cmd, &args[1..], &[Opt::Tier, Opt::Json])?;
            let md = gb_suite::experiments::generate_markdown(opts.size());
            match &opts.json {
                Some(path) => {
                    write_bytes_atomic(Path::new(path), md.as_bytes())
                        .map_err(|e| format!("writing {path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
                None => println!("{md}"),
            }
            Ok(Outcome::Clean)
        }
        "report" => {
            let which = args.get(1).ok_or("report needs a name or 'all'")?;
            let opts = parse_options(
                cmd,
                &args[2..],
                &[
                    Opt::Tier,
                    Opt::Json,
                    Opt::Trace,
                    Opt::Metrics,
                    Opt::ManifestOut,
                    Opt::Flame,
                    Opt::FlameSvg,
                ],
            )?;
            let instrument = opts.trace.is_some()
                || opts.metrics.is_some()
                || opts.manifest_out.is_some()
                || opts.flame.is_some()
                || opts.flame_svg.is_some();
            let recorder = instrument.then(TraceRecorder::new);
            let (generated, chars) = generate(which, &opts, &recorder)?;
            for r in &generated {
                println!("{}", r.text);
                if let Some(dir) = &opts.json {
                    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                    let path = format!("{dir}/{}.json", r.name);
                    // Every results/ artifact is schema-versioned and
                    // written atomically; readers check the envelope.
                    let envelope = serde_json::json!({
                        "schema_version": SCHEMA_VERSION,
                        "name": r.name,
                        "tier": opts.size().name(),
                        "data": r.json,
                    });
                    write_json_atomic(Path::new(&path), &envelope)
                        .map_err(|e| format!("writing {path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
            }
            if instrument {
                let mut registry = MetricsRegistry::new();
                if let Some(r) = &recorder {
                    for (name, value) in r.counters() {
                        registry.counter_add(&name, value);
                    }
                }
                if let Some(chars) = &chars {
                    for (id, c) in chars {
                        gb_uarch::export::export_characterization(
                            &mut registry,
                            id.name(),
                            &c.mix,
                            &c.cache,
                            &c.topdown,
                            c.bpki,
                        );
                    }
                }
                if let (Some(r), Some(path)) = (&recorder, &opts.trace) {
                    write_trace(r, path)?;
                }
                if let (Some(r), Some(path)) = (&recorder, &opts.flame) {
                    // Pipeline stage spans nest under their pipeline root
                    // (rg/dn/mg) by interval containment, so the folded
                    // stacks read `rg;rg:map 1234`-style.
                    let tree = StageTree::from_trace(&r.trace(), "ns");
                    write_flame(&tree, 1_000, path)?;
                }
                if let (Some(r), Some(path)) = (&recorder, &opts.flame_svg) {
                    let tree = StageTree::from_trace(&r.trace(), "ns");
                    let subtitle = format!("report {which} · {} tier", opts.size().name());
                    write_svg(&flamegraph_svg(&tree, &RenderConfig::wall(&subtitle)), path)?;
                }
                if let Some(path) = &opts.metrics {
                    write_metrics(&registry, path)?;
                }
                if let Some(path) = &opts.manifest_out {
                    let mut manifest = RunManifest::new("report", opts.size().name(), 1);
                    manifest.metrics = registry.to_json();
                    save_manifest(&manifest, path)?;
                }
            }
            Ok(Outcome::Clean)
        }
        "compare" => {
            let mut cfg = CompareConfig::default();
            let mut json = false;
            let mut write_summary = false;
            let mut baseline_dir: Option<String> = None;
            let mut diff_svg: Option<String> = None;
            let mut positional: Vec<&String> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--write-github-summary" => write_summary = true,
                    "--baseline-dir" => {
                        let v = it.next().ok_or("--baseline-dir needs a directory")?;
                        baseline_dir = Some(v.clone());
                    }
                    "--diff-svg" => {
                        let v = it.next().ok_or("--diff-svg needs a directory")?;
                        diff_svg = Some(v.clone());
                    }
                    "--tolerance" => {
                        let v = it.next().ok_or("--tolerance needs a value")?;
                        let t: f64 = v
                            .parse()
                            .map_err(|_| format!("bad --tolerance '{v}' (want a fraction)"))?;
                        if !(t.is_finite() && t > 0.0) {
                            return Err(format!(
                                "--tolerance must be a positive fraction, got {v}"
                            ));
                        }
                        cfg.rel_tolerance = t;
                    }
                    "--min-wall-ms" => {
                        let v = it.next().ok_or("--min-wall-ms needs a value")?;
                        let ms: u64 = v.parse().map_err(|_| format!("bad --min-wall-ms '{v}'"))?;
                        cfg.min_wall_ns = ms * 1_000_000;
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("unknown option '{other}'"))
                    }
                    _ => positional.push(a),
                }
            }
            let (base, base_label, cand, cand_path) = match &baseline_dir {
                Some(dir) => {
                    let [cand_path] = positional.as_slice() else {
                        return Err(
                            "compare --baseline-dir takes exactly one <candidate.json>".into()
                        );
                    };
                    let cand = load_manifest(cand_path)?;
                    let baselines = load_baseline_dir(dir, cand_path, &cand)?;
                    let n = baselines.len();
                    let base = pointwise_min_baseline(&baselines)
                        .expect("load_baseline_dir returned at least one manifest");
                    (
                        base,
                        format!("pointwise min of {n} manifest(s) in {dir}"),
                        cand,
                        (*cand_path).clone(),
                    )
                }
                None => {
                    let [base_path, cand_path] = positional.as_slice() else {
                        return Err("compare needs <baseline.json> <candidate.json>".into());
                    };
                    (
                        load_manifest(base_path)?,
                        (*base_path).clone(),
                        load_manifest(cand_path)?,
                        (*cand_path).clone(),
                    )
                }
            };
            let report = compare::compare(&base, &cand, &cfg);
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report.to_json()).map_err(|e| e.to_string())?
                );
            } else {
                println!(
                    "comparing {cand_path} (candidate) against {base_label} (baseline), \
tolerance {:.0}%, floor {}ms",
                    cfg.rel_tolerance * 100.0,
                    cfg.min_wall_ns / 1_000_000
                );
                print_compare_table(&report);
                for a in &report.attributions {
                    println!();
                    print_attribution(a);
                }
            }
            if let Some(dir) = &diff_svg {
                let attributions: Vec<&StageAttribution> = report.attributions.iter().collect();
                write_diff_svgs(&attributions, dir, "-diff")?;
            }
            if write_summary {
                append_github_summary(&github_summary_markdown(
                    &report,
                    &base_label,
                    &cand_path,
                    &cfg,
                ))?;
            }
            Ok(gate(&report))
        }
        "trend" => {
            let mut cfg = CompareConfig::default();
            let mut json = false;
            let mut diff_svg: Option<String> = None;
            let mut paths: Vec<&String> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--diff-svg" => {
                        let v = it.next().ok_or("--diff-svg needs a directory")?;
                        diff_svg = Some(v.clone());
                    }
                    "--tolerance" => {
                        let v = it.next().ok_or("--tolerance needs a value")?;
                        let t: f64 = v
                            .parse()
                            .map_err(|_| format!("bad --tolerance '{v}' (want a fraction)"))?;
                        if !(t.is_finite() && t > 0.0) {
                            return Err(format!(
                                "--tolerance must be a positive fraction, got {v}"
                            ));
                        }
                        cfg.rel_tolerance = t;
                    }
                    "--min-wall-ms" => {
                        let v = it.next().ok_or("--min-wall-ms needs a value")?;
                        let ms: u64 = v.parse().map_err(|_| format!("bad --min-wall-ms '{v}'"))?;
                        cfg.min_wall_ns = ms * 1_000_000;
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("unknown option '{other}'"))
                    }
                    _ => paths.push(a),
                }
            }
            if paths.is_empty() {
                return Err("trend needs at least one manifest".into());
            }
            let manifests: Vec<RunManifest> = paths
                .iter()
                .map(|p| load_manifest(p))
                .collect::<Result<_, _>>()?;
            let report = gb_obs::trend(&manifests, &cfg);
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report.to_json()).map_err(|e| e.to_string())?
                );
            } else {
                println!(
                    "trend over {} manifest(s), tolerance {:.0}%, floor {}ms",
                    manifests.len(),
                    cfg.rel_tolerance * 100.0,
                    cfg.min_wall_ns / 1_000_000
                );
                print_trend(&report);
                for (ctx, k) in report.regressions() {
                    if let Some(a) = &k.attribution {
                        println!();
                        println!("[{ctx}] latest vs best-previous:");
                        print_attribution(a);
                    }
                }
            }
            if let Some(dir) = &diff_svg {
                let attributions: Vec<&StageAttribution> = report
                    .regressions()
                    .filter_map(|(_, k)| k.attribution.as_ref())
                    .collect();
                write_diff_svgs(&attributions, dir, "-trend-diff")?;
            }
            if report.has_regressions() {
                Ok(Outcome::Regressed)
            } else {
                Ok(Outcome::Clean)
            }
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

type Chars = Vec<(KernelId, Characterization)>;

/// Generates the requested reports; returns the characterizations too
/// (when the report set needed them) so instrumented invocations can
/// export the uarch counters into the metrics registry and manifest.
fn generate(
    which: &str,
    opts: &Options,
    recorder: &Option<TraceRecorder>,
) -> Result<(Vec<Report>, Option<Chars>), String> {
    let size = opts.size();
    let threads = [1, 2, 4, 8];
    let rec: &dyn Recorder = match recorder {
        Some(r) => r,
        None => &NullRecorder,
    };
    let needs_chars = matches!(which, "fig5" | "fig6" | "fig8" | "fig9" | "all");
    let chars = if needs_chars {
        Some(reports::characterize_all(size))
    } else {
        None
    };
    let one = |name: &str| -> Result<Report, String> {
        Ok(match name {
            "table1" => reports::table1(),
            "table2" => reports::table2(),
            "table3" => reports::table3(size),
            "table4" => reports::table4(size),
            "table5" => reports::table5(size),
            "fig3" => reports::fig3(size),
            "fig4" => reports::fig4(size),
            "fig5" => reports::fig5(chars.as_ref().expect("chars prepared")),
            "fig6" => reports::fig6(chars.as_ref().expect("chars prepared")),
            "fig7" => reports::fig7_traced(size, &threads, rec),
            "fig8" => reports::fig8(chars.as_ref().expect("chars prepared")),
            "fig9" => reports::fig9(chars.as_ref().expect("chars prepared")),
            other => return Err(format!("unknown report '{other}'")),
        })
    };
    let generated = if which == "all" {
        [
            "table1", "table2", "table3", "table4", "table5", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9",
        ]
        .iter()
        .map(|n| one(n))
        .collect::<Result<Vec<_>, _>>()?
    } else {
        vec![one(which)?]
    };
    Ok((generated, chars))
}
