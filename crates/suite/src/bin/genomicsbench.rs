//! The `genomicsbench` command-line harness.
//!
//! ```text
//! genomicsbench list
//! genomicsbench run <kernel|all> [--size tiny|small|large] [--threads N]
//! genomicsbench report <table1|table2|table3|table4|table5|fig3..fig9|all>
//!                      [--size tiny|small|large] [--json <dir>]
//! ```

use gb_suite::dataset::DatasetSize;
use gb_suite::kernels::{prepare, run_parallel, KernelId};
use gb_suite::reports::{self, Report};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  genomicsbench list
  genomicsbench run <kernel|all> [--size tiny|small|large] [--threads N]
  genomicsbench report <name|all> [--size tiny|small|large] [--json <dir>]
  genomicsbench experiments [--size tiny|small|large] [--json <path>]
  genomicsbench export <dir> [--size tiny|small|large]
    names: table1 table2 table3 table4 table5 fig3 fig4 fig5 fig6 fig7 fig8 fig9";

struct Options {
    size: DatasetSize,
    threads: usize,
    json_dir: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options { size: DatasetSize::Small, threads: 1, json_dir: None };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size" => {
                let v = it.next().ok_or("--size needs a value")?;
                opts.size = v.parse()?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse::<usize>().map_err(|e| e.to_string())?;
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a directory")?;
                opts.json_dir = Some(v.clone());
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    match cmd.as_str() {
        "list" => {
            println!("{:<11} {:<22} pipeline", "kernel", "source tool");
            for id in KernelId::ALL {
                println!("{:<11} {:<22} {}", id.name(), id.source_tool(), id.pipeline());
            }
            Ok(())
        }
        "run" => {
            let which = args.get(1).ok_or("run needs a kernel name or 'all'")?;
            let opts = parse_options(&args[2..])?;
            let ids: Vec<KernelId> = if which == "all" {
                KernelId::ALL.to_vec()
            } else {
                vec![which.parse()?]
            };
            println!(
                "{:<11} {:>8} {:>12} {:>10}  ({} dataset, {} thread(s))",
                "kernel",
                "tasks",
                "elapsed",
                "checksum",
                opts.size.name(),
                opts.threads
            );
            for id in ids {
                let kernel = prepare(id, opts.size);
                let stats = run_parallel(kernel.as_ref(), opts.threads);
                println!(
                    "{:<11} {:>8} {:>12} {:>10x}",
                    id.name(),
                    stats.tasks,
                    format!("{:.3}s", stats.elapsed.as_secs_f64()),
                    stats.checksum & 0xFFFF_FFFF
                );
            }
            Ok(())
        }
        "export" => {
            let dir = args.get(1).ok_or("export needs a target directory")?;
            let opts = parse_options(&args[2..])?;
            let manifest = gb_suite::export::export_datasets(std::path::Path::new(dir), opts.size)
                .map_err(|e| e.to_string())?;
            for (file, items) in manifest {
                println!("{dir}/{file}  ({items} records)");
            }
            Ok(())
        }
        "experiments" => {
            let opts = parse_options(&args[1..])?;
            let md = gb_suite::experiments::generate_markdown(opts.size);
            match &opts.json_dir {
                Some(path) => {
                    std::fs::write(path, &md).map_err(|e| e.to_string())?;
                    eprintln!("wrote {path}");
                }
                None => println!("{md}"),
            }
            Ok(())
        }
        "report" => {
            let which = args.get(1).ok_or("report needs a name or 'all'")?;
            let opts = parse_options(&args[2..])?;
            let reports = generate(which, &opts)?;
            for r in &reports {
                println!("{}", r.text);
                if let Some(dir) = &opts.json_dir {
                    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                    let path = format!("{dir}/{}.json", r.name);
                    let body = serde_json::to_string_pretty(&r.json).map_err(|e| e.to_string())?;
                    std::fs::write(&path, body).map_err(|e| e.to_string())?;
                    eprintln!("wrote {path}");
                }
            }
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn generate(which: &str, opts: &Options) -> Result<Vec<Report>, String> {
    let size = opts.size;
    let threads = [1, 2, 4, 8];
    let needs_chars = matches!(which, "fig5" | "fig6" | "fig8" | "fig9" | "all");
    let chars = if needs_chars { Some(reports::characterize_all(size)) } else { None };
    let one = |name: &str| -> Result<Report, String> {
        Ok(match name {
            "table1" => reports::table1(),
            "table2" => reports::table2(),
            "table3" => reports::table3(size),
            "table4" => reports::table4(size),
            "table5" => reports::table5(size),
            "fig3" => reports::fig3(size),
            "fig4" => reports::fig4(size),
            "fig5" => reports::fig5(chars.as_ref().expect("chars prepared")),
            "fig6" => reports::fig6(chars.as_ref().expect("chars prepared")),
            "fig7" => reports::fig7(size, &threads),
            "fig8" => reports::fig8(chars.as_ref().expect("chars prepared")),
            "fig9" => reports::fig9(chars.as_ref().expect("chars prepared")),
            other => return Err(format!("unknown report '{other}'")),
        })
    };
    if which == "all" {
        [
            "table1", "table2", "table3", "table4", "table5", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9",
        ]
        .iter()
        .map(|n| one(n))
        .collect()
    } else {
        Ok(vec![one(which)?])
    }
}
