//! Dataset presets.
//!
//! GenomicsBench ships each kernel with a *small* and a *large* input
//! (paper §IV-A: small finishes in minutes, large in 5–20 single-thread
//! minutes on their machine). The synthetic datasets here keep the same
//! two-tier structure, scaled so `small` finishes in seconds and `large`
//! in tens of seconds on a laptop-class core — the per-kernel workload
//! *shapes* (read lengths, error rates, coverage, task-size
//! distributions) follow the paper's Section III descriptions.

use serde::{Deserialize, Serialize};

/// Which dataset tier to prepare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DatasetSize {
    /// Seconds-scale inputs.
    #[default]
    Small,
    /// Tens-of-seconds-scale inputs (10x the small tier, matching the
    /// paper's 1M -> 10M read scaling).
    Large,
    /// Milliseconds-scale inputs for tests and smoke runs (not part of
    /// the paper's tiers).
    Tiny,
}

impl DatasetSize {
    /// The multiplier applied to the small tier's task counts.
    pub fn scale(&self) -> usize {
        match self {
            DatasetSize::Tiny => 1,
            DatasetSize::Small => 10,
            DatasetSize::Large => 100,
        }
    }

    /// Lowercase name used by the CLI and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSize::Tiny => "tiny",
            DatasetSize::Small => "small",
            DatasetSize::Large => "large",
        }
    }
}

impl std::str::FromStr for DatasetSize {
    type Err = String;

    fn from_str(s: &str) -> Result<DatasetSize, String> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Ok(DatasetSize::Tiny),
            "small" => Ok(DatasetSize::Small),
            "large" => Ok(DatasetSize::Large),
            other => Err(format!("unknown dataset size '{other}' (tiny|small|large)")),
        }
    }
}

/// Fixed seeds so every run of the suite sees identical data.
pub mod seeds {
    /// Reference genome generation.
    pub const GENOME: u64 = 0xB10_B10;
    /// Short-read simulation.
    pub const SHORT_READS: u64 = 0x5EED_0001;
    /// Long-read simulation.
    pub const LONG_READS: u64 = 0x5EED_0002;
    /// Region task construction.
    pub const REGIONS: u64 = 0x5EED_0003;
    /// Chaining anchor synthesis.
    pub const ANCHORS: u64 = 0x5EED_0004;
    /// Nanopore signal simulation.
    pub const SIGNALS: u64 = 0x5EED_0005;
    /// Genotype matrix generation.
    pub const GENOTYPES: u64 = 0x5EED_0006;
    /// Neural-network weight initialization.
    pub const WEIGHTS: u64 = 0x5EED_0007;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        for s in [DatasetSize::Tiny, DatasetSize::Small, DatasetSize::Large] {
            assert_eq!(s.name().parse::<DatasetSize>().unwrap(), s);
        }
        assert!("medium".parse::<DatasetSize>().is_err());
    }

    #[test]
    fn parse_is_case_insensitive() {
        for s in ["Tiny", "TINY", "tInY"] {
            assert_eq!(s.parse::<DatasetSize>().unwrap(), DatasetSize::Tiny);
        }
        assert_eq!("LARGE".parse::<DatasetSize>().unwrap(), DatasetSize::Large);
        assert!("MEDIUM".parse::<DatasetSize>().is_err());
    }

    #[test]
    fn large_is_10x_small() {
        assert_eq!(DatasetSize::Large.scale(), 10 * DatasetSize::Small.scale());
    }
}
