//! Dataset export: writing the synthetic inputs to disk.
//!
//! GenomicsBench ships its input datasets alongside the kernels; this
//! module materializes the suite's synthetic equivalents as ordinary
//! files (FASTA references, FASTQ reads, TSV signal/event/genotype
//! tables) so external tools — or the original suite — can consume them.

use crate::dataset::{seeds, DatasetSize};
use gb_core::io::{write_fasta, write_fastq};
use gb_core::record::ReadRecord;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::genotypes::GenotypeMatrix;
use gb_datagen::reads::{simulate_reads, ReadSimConfig};
use gb_datagen::signal::{simulate_signal, PoreModel, SignalSimConfig};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Summary of an export run (file name -> item count).
pub type ExportManifest = Vec<(String, usize)>;

/// Writes the suite's datasets under `dir`, returning a manifest.
///
/// Produces:
/// - `reference.fasta` — the shared synthetic reference,
/// - `short_reads.fastq` / `long_reads.fastq` — Illumina-like and
///   ONT-like read sets,
/// - `signal.tsv` — raw nanopore samples (`read_id sample`),
/// - `events.tsv` — segmented events (`read_id mean stdv length`),
/// - `genotypes.tsv` — the GRM input matrix (individual per row).
///
/// # Errors
///
/// Returns I/O errors from file creation/writing.
pub fn export_datasets(dir: &Path, size: DatasetSize) -> std::io::Result<ExportManifest> {
    std::fs::create_dir_all(dir)?;
    let mut manifest = ExportManifest::new();
    let scale = size.scale();

    // Reference.
    let genome = Genome::generate(
        &GenomeConfig {
            length: 20_000 * scale,
            ..Default::default()
        },
        seeds::GENOME,
    );
    let records: Vec<(String, gb_core::seq::DnaSeq)> = genome
        .contigs()
        .iter()
        .enumerate()
        .map(|(i, c)| (format!("synthetic_contig_{i}"), c.clone()))
        .collect();
    let f = std::fs::File::create(dir.join("reference.fasta"))?;
    write_fasta(BufWriter::new(f), &records)?;
    manifest.push(("reference.fasta".into(), records.len()));

    // Reads.
    let short: Vec<ReadRecord> = simulate_reads(
        &genome,
        &ReadSimConfig::short(100 * scale),
        seeds::SHORT_READS,
    )
    .into_iter()
    .map(|r| r.record)
    .collect();
    let f = std::fs::File::create(dir.join("short_reads.fastq"))?;
    write_fastq(BufWriter::new(f), &short)?;
    manifest.push(("short_reads.fastq".into(), short.len()));

    let long: Vec<ReadRecord> =
        simulate_reads(&genome, &ReadSimConfig::long(5 * scale), seeds::LONG_READS)
            .into_iter()
            .map(|r| r.record)
            .collect();
    let f = std::fs::File::create(dir.join("long_reads.fastq"))?;
    write_fastq(BufWriter::new(f), &long)?;
    manifest.push(("long_reads.fastq".into(), long.len()));

    // Signal + events.
    let pore = PoreModel::r9_like();
    let mut sig_w = BufWriter::new(std::fs::File::create(dir.join("signal.tsv"))?);
    let mut ev_w = BufWriter::new(std::fs::File::create(dir.join("events.tsv"))?);
    writeln!(ev_w, "read_id\tmean\tstdv\tlength")?;
    writeln!(sig_w, "read_id\tsample")?;
    let n_signals = 2 * scale;
    for i in 0..n_signals {
        let seq = genome.contig(0).slice(i * 900, i * 900 + 800);
        let sig = simulate_signal(
            &seq,
            &pore,
            &SignalSimConfig::default(),
            seeds::SIGNALS + i as u64,
        );
        for s in &sig.raw {
            writeln!(sig_w, "r{i}\t{s:.2}")?;
        }
        for e in &sig.events {
            writeln!(ev_w, "r{i}\t{:.3}\t{:.3}\t{}", e.mean, e.stdv, e.length)?;
        }
    }
    manifest.push(("signal.tsv".into(), n_signals));
    manifest.push(("events.tsv".into(), n_signals));

    // Genotypes.
    let geno = GenotypeMatrix::generate(16 * scale, 100 * scale, seeds::GENOTYPES);
    let mut gw = BufWriter::new(std::fs::File::create(dir.join("genotypes.tsv"))?);
    for i in 0..geno.num_individuals() {
        let row: Vec<String> = geno.row(i).iter().map(|g| g.to_string()).collect();
        writeln!(gw, "{}", row.join("\t"))?;
    }
    manifest.push(("genotypes.tsv".into(), geno.num_individuals()));

    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_core::io::{read_fasta, read_fastq};
    use std::io::BufReader;

    #[test]
    fn export_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!("gbrs_export_{}", std::process::id()));
        let manifest = export_datasets(&dir, DatasetSize::Tiny).expect("export");
        assert_eq!(manifest.len(), 6);

        let fasta = read_fasta(BufReader::new(
            std::fs::File::open(dir.join("reference.fasta")).unwrap(),
        ))
        .expect("parse fasta");
        assert_eq!(fasta.len(), 1);
        assert_eq!(fasta[0].1.len(), 20_000);

        let reads = read_fastq(BufReader::new(
            std::fs::File::open(dir.join("short_reads.fastq")).unwrap(),
        ))
        .expect("parse fastq");
        assert_eq!(reads.len(), 100);
        assert!(reads.iter().all(|r| r.len() > 100));

        let events = std::fs::read_to_string(dir.join("events.tsv")).unwrap();
        assert!(events.lines().count() > 100);
        assert!(events.starts_with("read_id\t"));

        std::fs::remove_dir_all(&dir).ok();
    }
}
