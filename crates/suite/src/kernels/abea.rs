//! The **abea** kernel: adaptive banded event alignment (paper §III,
//! from Nanopolish/f5c).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_core::seq::DnaSeq;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::signal::{simulate_signal, Event, PoreModel, SignalSimConfig};
use gb_dp::abea::{align_events, align_events_probed, AbeaParams};
use gb_simt::exec::GpuKernelReport;
use gb_simt::kernels::{model_abea_gpu, AbeaGpuParams};
use gb_uarch::cache::CacheProbe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Prepared abea workload: raw-signal reads with their reference spans.
pub struct AbeaKernel {
    reads: Vec<(Vec<Event>, DnaSeq)>,
    model: PoreModel,
    params: AbeaParams,
}

impl AbeaKernel {
    /// Simulates FAST5-like signal reads over reference segments of
    /// varying length.
    pub fn prepare(size: DatasetSize) -> AbeaKernel {
        let num_reads = match size {
            DatasetSize::Tiny => 5,
            DatasetSize::Small => 80,
            DatasetSize::Large => 800,
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: 400_000,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let model = PoreModel::r9_like();
        let mut rng = StdRng::seed_from_u64(seeds::SIGNALS);
        let contig = genome.contig(0);
        let reads = (0..num_reads)
            .map(|_| {
                let len = rng.gen_range(800..=3000usize);
                let start = rng.gen_range(0..contig.len() - len);
                let seq = contig.slice(start, start + len);
                let sig = simulate_signal(&seq, &model, &SignalSimConfig::default(), rng.gen());
                (sig.events, seq)
            })
            .collect();
        AbeaKernel {
            reads,
            model,
            params: AbeaParams::default(),
        }
    }

    /// Runs the SIMT model over this workload (paper Tables IV–V).
    pub fn gpu_report(&self) -> GpuKernelReport {
        model_abea_gpu(
            &self.reads,
            &AbeaGpuParams::default(),
            gb_simt::GpuConfig::default(),
        )
    }
}

impl Kernel for AbeaKernel {
    fn id(&self) -> KernelId {
        KernelId::Abea
    }

    fn num_tasks(&self) -> usize {
        self.reads.len()
    }

    fn run_task(&self, i: usize) -> u64 {
        let (events, seq) = &self.reads[i];
        match align_events(events, seq, &self.model, &self.params) {
            Some(r) => r.cells.wrapping_add((r.score * -8.0) as u64),
            None => 0,
        }
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let (events, seq) = &self.reads[i];
        let _ = align_events_probed(events, seq, &self.model, &self.params, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        let (events, seq) = &self.reads[i];
        align_events(events, seq, &self.model, &self.params).map_or(0, |r| r.cells)
    }
}

impl std::fmt::Debug for AbeaKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbeaKernel")
            .field("reads", &self.reads.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = AbeaKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
        assert!(run_serial(&k).checksum != 0);
    }

    #[test]
    fn gpu_report_is_low_occupancy() {
        let k = AbeaKernel::prepare(DatasetSize::Tiny);
        let r = k.gpu_report();
        assert!(r.occupancy < 0.5);
        assert!(r.warp_efficiency < 1.0);
    }
}
