//! The **abea** kernel: adaptive banded event alignment (paper §III,
//! from Nanopolish/f5c).
//!
//! Two execution engines ([`DpEngine`]): the paper-faithful scalar mode
//! resolves each band cell's neighbors by `(event, k-mer)` search and
//! recomputes the pore-model `ln` per cell; the SIMD mode runs the
//! contiguous-band f32 engine (`gb_dp::abea::align_events_simd`) —
//! padded band rows, anchor-delta neighbor shifts and hoisted emission
//! parameters — with bit-identical scores, alignments and band walks,
//! so the two engines produce the same run checksum.

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_core::seq::DnaSeq;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::signal::{simulate_signal, Event, PoreModel, SignalSimConfig};
use gb_dp::abea::{align_events_engine, align_events_engine_probed, AbeaParams};
use gb_dp::DpEngine;
use gb_simt::exec::GpuKernelReport;
use gb_simt::kernels::{model_abea_gpu, AbeaGpuParams};
use gb_uarch::cache::CacheProbe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Deterministic build product of the abea prepare phase: the simulated
/// signal reads and the pore model they were drawn from.
pub struct AbeaSubstrate {
    reads: Vec<(Vec<Event>, DnaSeq)>,
    model: PoreModel,
}

impl gb_substrate::Codec for AbeaSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.reads, e);
        gb_substrate::Codec::encode(&self.model, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<AbeaSubstrate> {
        Some(AbeaSubstrate {
            reads: gb_substrate::Codec::decode(d)?,
            model: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared abea workload: raw-signal reads with their reference spans.
pub struct AbeaKernel {
    sub: Arc<AbeaSubstrate>,
    params: AbeaParams,
    engine: DpEngine,
}

impl AbeaKernel {
    /// Paper-faithful preparation: scalar engine.
    pub fn prepare(size: DatasetSize) -> AbeaKernel {
        AbeaKernel::prepare_with(size, DpEngine::Scalar)
    }

    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare_with(size: DatasetSize, engine: DpEngine) -> AbeaKernel {
        AbeaKernel::instantiate(Arc::new(AbeaKernel::build_substrate(size)), engine)
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. Cheap: no data is copied.
    pub fn instantiate(sub: Arc<AbeaSubstrate>, engine: DpEngine) -> AbeaKernel {
        AbeaKernel {
            sub,
            params: AbeaParams::default(),
            engine,
        }
    }

    /// Simulates FAST5-like signal reads over reference segments of
    /// varying length. The read set is identical for both engines; abea
    /// vectorizes *within* each band (anti-diagonal lanes), so the task
    /// shape is one read per task on either engine.
    pub fn build_substrate(size: DatasetSize) -> AbeaSubstrate {
        let num_reads = match size {
            DatasetSize::Tiny => 5,
            DatasetSize::Small => 80,
            DatasetSize::Large => 800,
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: 400_000,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let model = PoreModel::r9_like();
        let mut rng = StdRng::seed_from_u64(seeds::SIGNALS);
        let contig = genome.contig(0);
        let reads = (0..num_reads)
            .map(|_| {
                let len = rng.gen_range(800..=3000usize);
                let start = rng.gen_range(0..contig.len() - len);
                let seq = contig.slice(start, start + len);
                let sig = simulate_signal(&seq, &model, &SignalSimConfig::default(), rng.gen());
                (sig.events, seq)
            })
            .collect();
        AbeaSubstrate { reads, model }
    }

    /// Runs the SIMT model over this workload (paper Tables IV–V).
    pub fn gpu_report(&self) -> GpuKernelReport {
        model_abea_gpu(
            &self.sub.reads,
            &AbeaGpuParams::default(),
            gb_simt::GpuConfig::default(),
        )
    }
}

impl Kernel for AbeaKernel {
    fn id(&self) -> KernelId {
        KernelId::Abea
    }

    fn num_tasks(&self) -> usize {
        self.sub.reads.len()
    }

    // PANIC-FREE: the pool only calls `run_task` with `i < num_tasks()`,
    // the documented `Kernel` contract.
    fn run_task(&self, i: usize) -> u64 {
        let (events, seq) = &self.sub.reads[i];
        match align_events_engine(events, seq, &self.sub.model, &self.params, self.engine) {
            Some(r) => r.cells.wrapping_add((r.score * -8.0) as u64),
            None => 0,
        }
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let (events, seq) = &self.sub.reads[i];
        let _ = align_events_engine_probed(
            events,
            seq,
            &self.sub.model,
            &self.params,
            self.engine,
            probe,
        );
    }

    fn task_work(&self, i: usize) -> u64 {
        let (events, seq) = &self.sub.reads[i];
        align_events_engine(events, seq, &self.sub.model, &self.params, self.engine)
            .map_or(0, |r| r.cells)
    }

    fn export_gauges(&self) -> Vec<(String, f64)> {
        if self.engine != DpEngine::Simd {
            return Vec::new();
        }
        // Band-slot efficiency of the vector sweep: the adaptive band
        // allocates `n_bands x bandwidth` slots per read but only the
        // offsets inside the matrix are swept, so the dead-slot fraction
        // is the edge waste of the banding itself. Retired lanes are
        // structurally zero for this engine (f32 needs no precision
        // ladder) — exported so the compare gate can pin that invariant.
        let mut computed = 0u64;
        let mut allocated = 0u64;
        for (events, seq) in &self.sub.reads {
            if let Some(r) =
                align_events_engine(events, seq, &self.sub.model, &self.params, self.engine)
            {
                let n_kmers = seq.len().saturating_sub(gb_datagen::signal::PORE_K - 1);
                let n_bands = (events.len() + n_kmers + 2) as u64;
                computed += r.cells;
                allocated += n_bands * self.params.bandwidth as u64;
            }
        }
        let dead = if allocated == 0 {
            0.0
        } else {
            1.0 - computed as f64 / allocated as f64
        };
        vec![
            ("abea.dead_slot_fraction".to_string(), dead),
            ("abea.simd_retired_lanes".to_string(), 0.0),
        ]
    }
}

impl std::fmt::Debug for AbeaKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbeaKernel")
            .field("reads", &self.sub.reads.len())
            .field("engine", &self.engine.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = AbeaKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
        assert!(run_serial(&k).checksum != 0);
    }

    #[test]
    fn gpu_report_is_low_occupancy() {
        let k = AbeaKernel::prepare(DatasetSize::Tiny);
        let r = k.gpu_report();
        assert!(r.occupancy < 0.5);
        assert!(r.warp_efficiency < 1.0);
    }

    #[test]
    fn engines_agree_on_checksum() {
        let scalar = AbeaKernel::prepare_with(DatasetSize::Tiny, DpEngine::Scalar);
        let simd = AbeaKernel::prepare_with(DatasetSize::Tiny, DpEngine::Simd);
        assert_eq!(scalar.num_tasks(), simd.num_tasks());
        assert_eq!(
            run_serial(&scalar).checksum,
            run_parallel(&simd, 4).checksum
        );
    }

    #[test]
    fn engines_agree_on_total_work() {
        let scalar = AbeaKernel::prepare_with(DatasetSize::Tiny, DpEngine::Scalar);
        let simd = AbeaKernel::prepare_with(DatasetSize::Tiny, DpEngine::Simd);
        assert_eq!(
            crate::kernels::total_work(&scalar),
            crate::kernels::total_work(&simd)
        );
    }

    #[test]
    fn simd_gauges_report_band_efficiency() {
        let simd = AbeaKernel::prepare_with(DatasetSize::Tiny, DpEngine::Simd);
        let gauges = simd.export_gauges();
        let get = |name: &str| {
            gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        let dead = get("abea.dead_slot_fraction");
        assert!((0.0..1.0).contains(&dead), "dead slots {dead}");
        assert_eq!(get("abea.simd_retired_lanes"), 0.0);
        // Scalar engine exports nothing.
        assert!(AbeaKernel::prepare(DatasetSize::Tiny)
            .export_gauges()
            .is_empty());
    }
}
