//! The **bsw** kernel: banded Smith-Waterman seed extension (paper §III,
//! from BWA-MEM2).
//!
//! Two execution engines ([`DpEngine`]): the paper-faithful scalar mode
//! runs one i32 alignment per pool task (Table III granularity); the SIMD
//! mode length-sorts the pairs, packs them into contiguous 16-lane
//! lockstep groups, and runs each group as one pool task on the i16
//! struct-of-arrays engine (`gb_dp::bsw_simd`) — bit-identical results,
//! so the two engines produce the same run checksum.

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_dp::bsw::{banded_sw, banded_sw_probed, run_batch, BatchReport, SwParams, SwTask};
use gb_dp::bsw_batch::LANES;
use gb_dp::bsw_simd::{run_simd, simd_group_probed};
use gb_dp::DpEngine;
use gb_uarch::cache::CacheProbe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Deterministic build product of the bsw prepare phase: the sequence
/// pairs in generation order. Engine-independent — the SIMD engine's
/// length-sorting happens at instantiation, so both engines (and the
/// unsorted-baseline gauges) share one cached substrate.
pub struct BswSubstrate {
    tasks: Vec<SwTask>,
}

impl gb_substrate::Codec for BswSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.tasks, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<BswSubstrate> {
        Some(BswSubstrate {
            tasks: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared bsw workload: query/target pairs of varying length and
/// similarity (the ingredients of the paper's lane-divergence analysis).
pub struct BswKernel {
    sub: Arc<BswSubstrate>,
    /// SIMD engine only: the substrate pairs length-sorted for lockstep
    /// grouping (scalar leaves this empty and runs the substrate order).
    sorted: Vec<SwTask>,
    params: SwParams,
    engine: DpEngine,
    /// SIMD engine only: contiguous `sorted` ranges, one lockstep group
    /// per pool task, issued largest-first so the dynamic pool schedules
    /// longest-processing-time first.
    groups: Vec<std::ops::Range<usize>>,
}

impl BswKernel {
    /// Paper-faithful preparation: scalar engine, one pair per task.
    pub fn prepare(size: DatasetSize) -> BswKernel {
        BswKernel::prepare_with(size, DpEngine::Scalar)
    }

    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare_with(size: DatasetSize, engine: DpEngine) -> BswKernel {
        BswKernel::instantiate(Arc::new(BswKernel::build_substrate(size)), engine)
    }

    /// The pairs task `i` executes, in this engine's task order.
    fn tasks(&self) -> &[SwTask] {
        match self.engine {
            DpEngine::Scalar => &self.sub.tasks,
            DpEngine::Simd => &self.sorted,
        }
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. The SIMD engine length-sorts a copy of the pairs
    /// into contiguous lockstep groups here — per-run work, deliberately
    /// outside the substrate so one cache entry serves both engines.
    pub fn instantiate(sub: Arc<BswSubstrate>, engine: DpEngine) -> BswKernel {
        let mut sorted = Vec::new();
        let mut groups = Vec::new();
        if engine == DpEngine::Simd {
            // Length-sorted batch scheduling: similar-length pairs share a
            // lockstep group, cutting the Fig. 3 dead-slot over-compute.
            sorted = sub.tasks.clone();
            sorted.sort_by_key(|t| t.query.len() + t.target.len());
            let mut start = 0;
            while start < sorted.len() {
                let end = (start + LANES).min(sorted.len());
                groups.push(start..end);
                start = end;
            }
            // Largest (longest-sequence) groups first.
            groups.reverse();
        }
        BswKernel {
            sub,
            sorted,
            params: SwParams::default(),
            engine,
            groups,
        }
    }

    /// Draws sequence pairs from a synthetic genome: mostly true pairs
    /// (overlapping segments with errors), some unrelated pairs (which
    /// trigger the Z-drop early exit — the paper's divergence source).
    /// The pair set is identical for both engines; only the task shape
    /// differs.
    pub fn build_substrate(size: DatasetSize) -> BswSubstrate {
        let num_pairs = match size {
            DatasetSize::Tiny => 100,
            DatasetSize::Small => 2_000,
            DatasetSize::Large => 20_000,
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: 500_000.min(num_pairs * 600),
                ..Default::default()
            },
            seeds::GENOME,
        );
        let contig = genome.contig(0);
        let mut rng = StdRng::seed_from_u64(seeds::SHORT_READS ^ 0xB5);
        let mut tasks = Vec::with_capacity(num_pairs);
        for _ in 0..num_pairs {
            // Length-diverse pairs: 60..=400 bases.
            let len = rng.gen_range(60..=400usize);
            let start = rng.gen_range(0..contig.len() - len);
            let target = contig.slice(start, start + len);
            let query = if rng.gen::<f64>() < 0.85 {
                // A noisy copy of the target (0.5% substitutions).
                let codes = target
                    .as_codes()
                    .iter()
                    .map(|&c| {
                        if rng.gen::<f64>() < 0.005 {
                            (c + 1) % 4
                        } else {
                            c
                        }
                    })
                    .collect();
                gb_core::seq::DnaSeq::from_codes_unchecked(codes)
            } else {
                // Unrelated segment: similar length, dissimilar content.
                let s2 = rng.gen_range(0..contig.len() - len);
                contig.slice(s2, s2 + len).reverse_complement()
            };
            tasks.push(SwTask { query, target });
        }
        BswSubstrate { tasks }
    }

    /// Runs the inter-sequence SIMD batch model (Fig. 3): `lanes`-wide
    /// lockstep execution, optionally length-sorted.
    pub fn batch_report(&self, lanes: usize, sort_by_len: bool) -> BatchReport {
        let (_, report) = run_batch(self.tasks(), &self.params, lanes, sort_by_len);
        report
    }

    /// Runs the *executed* lockstep kernel (`gb_dp::bsw_batch`) over the
    /// same tasks: real per-step lane masking rather than the analytic
    /// max-cells model.
    pub fn lockstep_report(&self, sort_by_len: bool) -> BatchReport {
        let (_, report) = gb_dp::bsw_batch::run_lockstep(self.tasks(), &self.params, sort_by_len);
        report
    }

    /// Runs the i16 SoA SIMD engine (`gb_dp::bsw_simd`) over the same
    /// tasks and reports its slot counts (plus retired-lane tally).
    pub fn simd_report(&self, sort_by_len: bool) -> BatchReport {
        let (_, report) = run_simd(self.tasks(), &self.params, sort_by_len);
        report
    }
}

impl Kernel for BswKernel {
    fn id(&self) -> KernelId {
        KernelId::Bsw
    }

    fn num_tasks(&self) -> usize {
        match self.engine {
            DpEngine::Scalar => self.sub.tasks.len(),
            DpEngine::Simd => self.groups.len(),
        }
    }

    // PANIC-FREE: the pool only calls `run_task` with `i < num_tasks()`,
    // the documented `Kernel` contract.
    fn run_task(&self, i: usize) -> u64 {
        match self.engine {
            DpEngine::Scalar => {
                let t = &self.tasks()[i];
                let r = banded_sw(&t.query, &t.target, &self.params);
                (r.score as u64).wrapping_mul(31).wrapping_add(r.cells)
            }
            DpEngine::Simd => {
                let group = &self.tasks()[self.groups[i].clone()];
                let (results, _) = gb_dp::bsw_simd::simd_group(group, &self.params);
                // Same per-alignment contribution as the scalar engine,
                // wrapping-summed: the pool checksum is order-insensitive,
                // so both engines agree on the total.
                results.iter().fold(0u64, |acc, r| {
                    acc.wrapping_add((r.score as u64).wrapping_mul(31).wrapping_add(r.cells))
                })
            }
        }
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        match self.engine {
            DpEngine::Scalar => {
                let t = &self.tasks()[i];
                let _ = banded_sw_probed(&t.query, &t.target, &self.params, probe);
            }
            DpEngine::Simd => {
                let group = &self.tasks()[self.groups[i].clone()];
                let _ = simd_group_probed(group, &self.params, probe);
            }
        }
    }

    fn task_work(&self, i: usize) -> u64 {
        let cells = |t: &SwTask| banded_sw(&t.query, &t.target, &self.params).cells;
        match self.engine {
            DpEngine::Scalar => cells(&self.tasks()[i]),
            DpEngine::Simd => self.tasks()[self.groups[i].clone()].iter().map(cells).sum(),
        }
    }

    fn export_gauges(&self) -> Vec<(String, f64)> {
        if self.engine != DpEngine::Simd {
            return Vec::new();
        }
        // Slot-efficiency delta of length-sorted batch scheduling, wired
        // into metrics/manifests so `compare` can track it. The substrate
        // keeps the pairs in generation order, so it *is* the unsorted
        // baseline the scalar engine would have grouped.
        let (_, unsorted) = run_simd(&self.sub.tasks, &self.params, false);
        let sorted = self.simd_report(true);
        vec![
            (
                "bsw.dead_slot_fraction.unsorted".to_string(),
                unsorted.dead_slot_fraction(),
            ),
            (
                "bsw.dead_slot_fraction.sorted".to_string(),
                sorted.dead_slot_fraction(),
            ),
            (
                "bsw.simd_retired_lanes".to_string(),
                sorted.retired_lanes as f64,
            ),
        ]
    }
}

impl std::fmt::Debug for BswKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BswKernel")
            .field("pairs", &self.sub.tasks.len())
            .field("engine", &self.engine.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial, work_distribution};

    #[test]
    fn deterministic_across_threads() {
        let k = BswKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
    }

    #[test]
    fn work_is_imbalanced() {
        let k = BswKernel::prepare(DatasetSize::Tiny);
        let d = work_distribution(&k);
        assert!(d.imbalance > 1.5, "imbalance {}", d.imbalance);
    }

    #[test]
    fn batch_overcomputes_and_sorting_helps() {
        let k = BswKernel::prepare(DatasetSize::Tiny);
        let unsorted = k.batch_report(16, false);
        let sorted = k.batch_report(16, true);
        assert!(
            unsorted.overcompute() > 1.2,
            "unsorted {}",
            unsorted.overcompute()
        );
        assert!(sorted.overcompute() < unsorted.overcompute());
    }

    #[test]
    fn engines_agree_on_checksum() {
        // The SIMD engine is bit-identical per alignment and the pool
        // checksum is order-insensitive, so the run checksums match even
        // though the SIMD engine groups 16 pairs per task.
        let scalar = BswKernel::prepare_with(DatasetSize::Tiny, DpEngine::Scalar);
        let simd = BswKernel::prepare_with(DatasetSize::Tiny, DpEngine::Simd);
        assert_eq!(scalar.num_tasks(), 100);
        assert_eq!(simd.num_tasks(), 100usize.div_ceil(LANES));
        assert_eq!(
            run_serial(&scalar).checksum,
            run_parallel(&simd, 4).checksum
        );
    }

    #[test]
    fn engines_agree_on_total_work() {
        let scalar = BswKernel::prepare_with(DatasetSize::Tiny, DpEngine::Scalar);
        let simd = BswKernel::prepare_with(DatasetSize::Tiny, DpEngine::Simd);
        assert_eq!(
            crate::kernels::total_work(&scalar),
            crate::kernels::total_work(&simd)
        );
    }

    #[test]
    fn simd_gauges_show_sorting_gain() {
        let simd = BswKernel::prepare_with(DatasetSize::Tiny, DpEngine::Simd);
        let gauges = simd.export_gauges();
        let get = |name: &str| {
            gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        let unsorted = get("bsw.dead_slot_fraction.unsorted");
        let sorted = get("bsw.dead_slot_fraction.sorted");
        assert!(unsorted > 0.0, "unsorted dead slots {unsorted}");
        assert!(sorted < unsorted, "sorted {sorted} vs unsorted {unsorted}");
        // Scalar engine exports nothing.
        assert!(BswKernel::prepare(DatasetSize::Tiny)
            .export_gauges()
            .is_empty());
    }
}
