//! The **bsw** kernel: banded Smith-Waterman seed extension (paper §III,
//! from BWA-MEM2).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_dp::bsw::{banded_sw, banded_sw_probed, run_batch, BatchReport, SwParams, SwTask};
use gb_uarch::cache::CacheProbe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Prepared bsw workload: query/target pairs of varying length and
/// similarity (the ingredients of the paper's lane-divergence analysis).
pub struct BswKernel {
    tasks: Vec<SwTask>,
    params: SwParams,
}

impl BswKernel {
    /// Draws sequence pairs from a synthetic genome: mostly true pairs
    /// (overlapping segments with errors), some unrelated pairs (which
    /// trigger the Z-drop early exit — the paper's divergence source).
    pub fn prepare(size: DatasetSize) -> BswKernel {
        let num_pairs = match size {
            DatasetSize::Tiny => 100,
            DatasetSize::Small => 2_000,
            DatasetSize::Large => 20_000,
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: 500_000.min(num_pairs * 600),
                ..Default::default()
            },
            seeds::GENOME,
        );
        let contig = genome.contig(0);
        let mut rng = StdRng::seed_from_u64(seeds::SHORT_READS ^ 0xB5);
        let mut tasks = Vec::with_capacity(num_pairs);
        for _ in 0..num_pairs {
            // Length-diverse pairs: 60..=400 bases.
            let len = rng.gen_range(60..=400usize);
            let start = rng.gen_range(0..contig.len() - len);
            let target = contig.slice(start, start + len);
            let query = if rng.gen::<f64>() < 0.85 {
                // A noisy copy of the target (0.5% substitutions).
                let codes = target
                    .as_codes()
                    .iter()
                    .map(|&c| {
                        if rng.gen::<f64>() < 0.005 {
                            (c + 1) % 4
                        } else {
                            c
                        }
                    })
                    .collect();
                gb_core::seq::DnaSeq::from_codes_unchecked(codes)
            } else {
                // Unrelated segment: similar length, dissimilar content.
                let s2 = rng.gen_range(0..contig.len() - len);
                contig.slice(s2, s2 + len).reverse_complement()
            };
            tasks.push(SwTask { query, target });
        }
        BswKernel {
            tasks,
            params: SwParams::default(),
        }
    }

    /// Runs the inter-sequence SIMD batch model (Fig. 3): `lanes`-wide
    /// lockstep execution, optionally length-sorted.
    pub fn batch_report(&self, lanes: usize, sort_by_len: bool) -> BatchReport {
        let (_, report) = run_batch(&self.tasks, &self.params, lanes, sort_by_len);
        report
    }

    /// Runs the *executed* lockstep kernel (`gb_dp::bsw_batch`) over the
    /// same tasks: real per-step lane masking rather than the analytic
    /// max-cells model.
    pub fn lockstep_report(&self, sort_by_len: bool) -> BatchReport {
        let (_, report) = gb_dp::bsw_batch::run_lockstep(&self.tasks, &self.params, sort_by_len);
        report
    }
}

impl Kernel for BswKernel {
    fn id(&self) -> KernelId {
        KernelId::Bsw
    }

    fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn run_task(&self, i: usize) -> u64 {
        let t = &self.tasks[i];
        let r = banded_sw(&t.query, &t.target, &self.params);
        (r.score as u64).wrapping_mul(31).wrapping_add(r.cells)
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let t = &self.tasks[i];
        let _ = banded_sw_probed(&t.query, &t.target, &self.params, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        let t = &self.tasks[i];
        banded_sw(&t.query, &t.target, &self.params).cells
    }
}

impl std::fmt::Debug for BswKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BswKernel")
            .field("pairs", &self.tasks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial, work_distribution};

    #[test]
    fn deterministic_across_threads() {
        let k = BswKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
    }

    #[test]
    fn work_is_imbalanced() {
        let k = BswKernel::prepare(DatasetSize::Tiny);
        let d = work_distribution(&k);
        assert!(d.imbalance > 1.5, "imbalance {}", d.imbalance);
    }

    #[test]
    fn batch_overcomputes_and_sorting_helps() {
        let k = BswKernel::prepare(DatasetSize::Tiny);
        let unsorted = k.batch_report(16, false);
        let sorted = k.batch_report(16, true);
        assert!(
            unsorted.overcompute() > 1.2,
            "unsorted {}",
            unsorted.overcompute()
        );
        assert!(sorted.overcompute() < unsorted.overcompute());
    }
}
