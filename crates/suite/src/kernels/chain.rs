//! The **chain** kernel: minimap2 anchor chaining (paper §III).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_datagen::anchors::{synthetic_anchor_sets, AnchorSet, AnchorSimConfig};
use gb_dp::chain::{chain_anchors, chain_anchors_probed, ChainParams};
use gb_uarch::cache::CacheProbe;

/// Prepared chain workload: one anchor set per read pair.
pub struct ChainKernel {
    tasks: Vec<AnchorSet>,
    params: ChainParams,
}

impl ChainKernel {
    /// Synthesizes overlap tasks with long-tailed anchor counts (the
    /// paper's PacBio *C. elegans* all-vs-all workload shape).
    pub fn prepare(size: DatasetSize) -> ChainKernel {
        let num_pairs = match size {
            DatasetSize::Tiny => 20,
            DatasetSize::Small => 1_000,
            DatasetSize::Large => 10_000,
        };
        let cfg = AnchorSimConfig {
            num_pairs,
            mean_anchors: 500,
            ..Default::default()
        };
        ChainKernel {
            tasks: synthetic_anchor_sets(&cfg, seeds::ANCHORS),
            params: ChainParams::default(),
        }
    }
}

impl Kernel for ChainKernel {
    fn id(&self) -> KernelId {
        KernelId::Chain
    }

    fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn run_task(&self, i: usize) -> u64 {
        let r = chain_anchors(&self.tasks[i], &self.params);
        r.chains
            .iter()
            .map(|c| c.score as u64 ^ (c.len() as u64).rotate_left(13))
            .fold(r.comparisons, u64::wrapping_add)
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = chain_anchors_probed(&self.tasks[i], &self.params, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        self.tasks[i].len() as u64
    }
}

impl std::fmt::Debug for ChainKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainKernel")
            .field("pairs", &self.tasks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial, work_distribution};

    #[test]
    fn deterministic_across_threads() {
        let k = ChainKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
    }

    #[test]
    fn anchor_counts_are_long_tailed() {
        let k = ChainKernel::prepare(DatasetSize::Tiny);
        let d = work_distribution(&k);
        assert!(d.imbalance > 1.5, "imbalance {}", d.imbalance);
    }
}
