//! The **chain** kernel: minimap2 anchor chaining (paper §III).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_datagen::anchors::{synthetic_anchor_sets, AnchorSet, AnchorSimConfig};
use gb_dp::chain::{chain_anchors, chain_anchors_probed, ChainParams};
use gb_uarch::cache::CacheProbe;
use std::sync::Arc;

/// Deterministic build product of the chain prepare phase: the synthetic
/// anchor sets.
pub struct ChainSubstrate {
    tasks: Vec<AnchorSet>,
}

impl gb_substrate::Codec for ChainSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.tasks, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<ChainSubstrate> {
        Some(ChainSubstrate {
            tasks: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared chain workload: one anchor set per read pair.
pub struct ChainKernel {
    sub: Arc<ChainSubstrate>,
    params: ChainParams,
}

impl ChainKernel {
    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare(size: DatasetSize) -> ChainKernel {
        ChainKernel::instantiate(Arc::new(ChainKernel::build_substrate(size)))
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. Cheap: no data is copied.
    pub fn instantiate(sub: Arc<ChainSubstrate>) -> ChainKernel {
        ChainKernel {
            sub,
            params: ChainParams::default(),
        }
    }

    /// Synthesizes overlap tasks with long-tailed anchor counts (the
    /// paper's PacBio *C. elegans* all-vs-all workload shape).
    pub fn build_substrate(size: DatasetSize) -> ChainSubstrate {
        let num_pairs = match size {
            DatasetSize::Tiny => 20,
            DatasetSize::Small => 1_000,
            DatasetSize::Large => 10_000,
        };
        let cfg = AnchorSimConfig {
            num_pairs,
            mean_anchors: 500,
            ..Default::default()
        };
        ChainSubstrate {
            tasks: synthetic_anchor_sets(&cfg, seeds::ANCHORS),
        }
    }
}

impl Kernel for ChainKernel {
    fn id(&self) -> KernelId {
        KernelId::Chain
    }

    fn num_tasks(&self) -> usize {
        self.sub.tasks.len()
    }

    // PANIC-FREE: the pool only calls `run_task` with `i < num_tasks()`,
    // the documented `Kernel` contract.
    fn run_task(&self, i: usize) -> u64 {
        let r = chain_anchors(&self.sub.tasks[i], &self.params);
        r.chains
            .iter()
            .map(|c| c.score as u64 ^ (c.len() as u64).rotate_left(13))
            .fold(r.comparisons, u64::wrapping_add)
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = chain_anchors_probed(&self.sub.tasks[i], &self.params, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        self.sub.tasks[i].len() as u64
    }
}

impl std::fmt::Debug for ChainKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainKernel")
            .field("pairs", &self.sub.tasks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial, work_distribution};

    #[test]
    fn deterministic_across_threads() {
        let k = ChainKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
    }

    #[test]
    fn anchor_counts_are_long_tailed() {
        let k = ChainKernel::prepare(DatasetSize::Tiny);
        let d = work_distribution(&k);
        assert!(d.imbalance > 1.5, "imbalance {}", d.imbalance);
    }
}
