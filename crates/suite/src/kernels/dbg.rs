//! The **dbg** kernel: De-Bruijn re-assembly of variant-calling regions
//! (paper §III, from Platypus).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_assembly::dbg::{assemble_region, assemble_region_probed, DbgParams};
use gb_core::region::RegionTask;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::regions::{build_region_tasks, RegionSimConfig};
use gb_uarch::cache::CacheProbe;
use std::sync::Arc;

/// Deterministic build product of the dbg prepare phase: the simulated
/// re-assembly windows with their aligned reads.
pub struct DbgSubstrate {
    tasks: Vec<RegionTask>,
}

impl gb_substrate::Codec for DbgSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.tasks, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<DbgSubstrate> {
        Some(DbgSubstrate {
            tasks: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared dbg workload: one task per reference window with its aligned
/// reads.
pub struct DbgKernel {
    sub: Arc<DbgSubstrate>,
    params: DbgParams,
}

impl DbgKernel {
    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare(size: DatasetSize) -> DbgKernel {
        DbgKernel::instantiate(Arc::new(DbgKernel::build_substrate(size)))
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. Cheap: no data is copied.
    pub fn instantiate(sub: Arc<DbgSubstrate>) -> DbgKernel {
        DbgKernel {
            sub,
            params: DbgParams::default(),
        }
    }

    /// Simulates a diploid short-read sample over a reference and buckets
    /// it into 500-base re-assembly windows.
    pub fn build_substrate(size: DatasetSize) -> DbgSubstrate {
        let genome_len = match size {
            DatasetSize::Tiny => 20_000,
            DatasetSize::Small => 200_000,
            DatasetSize::Large => 2_000_000,
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: genome_len,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let workload = build_region_tasks(&genome, &RegionSimConfig::default(), seeds::REGIONS);
        DbgSubstrate {
            tasks: workload.tasks,
        }
    }
}

impl Kernel for DbgKernel {
    fn id(&self) -> KernelId {
        KernelId::Dbg
    }

    fn num_tasks(&self) -> usize {
        self.sub.tasks.len()
    }

    // PANIC-FREE: the pool only calls `run_task` with `i < num_tasks()`,
    // the documented `Kernel` contract.
    fn run_task(&self, i: usize) -> u64 {
        let r = assemble_region(&self.sub.tasks[i], &self.params);
        r.haplotypes.len() as u64 * 1000 + r.hash_lookups % 997 + u64::from(r.cycles_hit) * 7
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = assemble_region_probed(&self.sub.tasks[i], &self.params, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        assemble_region(&self.sub.tasks[i], &self.params).hash_lookups
    }
}

impl std::fmt::Debug for DbgKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbgKernel")
            .field("regions", &self.sub.tasks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = DbgKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
        assert_eq!(k.num_tasks(), 40); // 20 kb / 500 b windows
    }

    #[test]
    fn some_region_produces_alternate_haplotypes() {
        let k = DbgKernel::prepare(DatasetSize::Tiny);
        let with_alts = (0..k.num_tasks())
            .filter(|&i| assemble_region(&k.sub.tasks[i], &k.params).haplotypes.len() > 1)
            .count();
        assert!(with_alts > 0, "no region assembled an alternate haplotype");
    }
}
