//! The **dbg** kernel: De-Bruijn re-assembly of variant-calling regions
//! (paper §III, from Platypus).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_assembly::dbg::{assemble_region, assemble_region_probed, DbgParams};
use gb_core::region::RegionTask;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::regions::{build_region_tasks, RegionSimConfig};
use gb_uarch::cache::CacheProbe;

/// Prepared dbg workload: one task per reference window with its aligned
/// reads.
pub struct DbgKernel {
    tasks: Vec<RegionTask>,
    params: DbgParams,
}

impl DbgKernel {
    /// Simulates a diploid short-read sample over a reference and buckets
    /// it into 500-base re-assembly windows.
    pub fn prepare(size: DatasetSize) -> DbgKernel {
        let genome_len = match size {
            DatasetSize::Tiny => 20_000,
            DatasetSize::Small => 200_000,
            DatasetSize::Large => 2_000_000,
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: genome_len,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let workload = build_region_tasks(&genome, &RegionSimConfig::default(), seeds::REGIONS);
        DbgKernel {
            tasks: workload.tasks,
            params: DbgParams::default(),
        }
    }
}

impl Kernel for DbgKernel {
    fn id(&self) -> KernelId {
        KernelId::Dbg
    }

    fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn run_task(&self, i: usize) -> u64 {
        let r = assemble_region(&self.tasks[i], &self.params);
        r.haplotypes.len() as u64 * 1000 + r.hash_lookups % 997 + u64::from(r.cycles_hit) * 7
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = assemble_region_probed(&self.tasks[i], &self.params, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        assemble_region(&self.tasks[i], &self.params).hash_lookups
    }
}

impl std::fmt::Debug for DbgKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbgKernel")
            .field("regions", &self.tasks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = DbgKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
        assert_eq!(k.num_tasks(), 40); // 20 kb / 500 b windows
    }

    #[test]
    fn some_region_produces_alternate_haplotypes() {
        let k = DbgKernel::prepare(DatasetSize::Tiny);
        let with_alts = (0..k.num_tasks())
            .filter(|&i| assemble_region(&k.tasks[i], &k.params).haplotypes.len() > 1)
            .count();
        assert!(with_alts > 0, "no region assembled an alternate haplotype");
    }
}
