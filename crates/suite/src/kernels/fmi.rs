//! The **fmi** kernel: SMEM search over an FM-index (paper §III, from
//! BWA-MEM2).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_core::seq::DnaSeq;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::reads::{simulate_reads, ReadSimConfig};
use gb_fmi::bidir::BiIndex;
use gb_fmi::smem::{collect_smems, collect_smems_probed, SmemConfig};
use gb_uarch::cache::CacheProbe;
use gb_uarch::probe::NullProbe;

/// Prepared fmi workload: a bidirectional index plus reads to seed.
pub struct FmiKernel {
    index: BiIndex,
    reads: Vec<DnaSeq>,
    config: SmemConfig,
}

impl FmiKernel {
    /// Builds the index and simulates the read set.
    ///
    /// The reference is sized so the index working set exceeds the
    /// modelled LLC (as the paper's ~10 GB human FM-index dwarfs an 8 MB
    /// LLC), which is what makes the kernel memory-bound.
    pub fn prepare(size: DatasetSize) -> FmiKernel {
        let (genome_len, num_reads) = match size {
            DatasetSize::Tiny => (100_000, 50),
            DatasetSize::Small => (8_000_000, 2_000),
            DatasetSize::Large => (24_000_000, 20_000),
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: genome_len,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let reads = simulate_reads(
            &genome,
            &ReadSimConfig::short(num_reads),
            seeds::SHORT_READS,
        )
        .into_iter()
        .map(|r| r.record.seq)
        .collect();
        let index = BiIndex::build(&genome.concat());
        FmiKernel {
            index,
            reads,
            config: SmemConfig::default(),
        }
    }

    /// The index heap footprint in bytes.
    pub fn index_bytes(&self) -> usize {
        self.index.heap_bytes()
    }
}

impl Kernel for FmiKernel {
    fn id(&self) -> KernelId {
        KernelId::Fmi
    }

    fn num_tasks(&self) -> usize {
        self.reads.len()
    }

    fn run_task(&self, i: usize) -> u64 {
        let smems = collect_smems(&self.index, &self.reads[i], &self.config);
        smems
            .iter()
            .map(|m| (m.end - m.start) as u64 ^ u64::from(m.interval.s).rotate_left(17))
            .fold(0, u64::wrapping_add)
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = collect_smems_probed(&self.index, &self.reads[i], &self.config, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        // Occ-table lookups: counted by a mix-only probe.
        let mut probe = gb_uarch::mix::MixProbe::new();
        let _ = collect_smems_probed(&self.index, &self.reads[i], &self.config, &mut probe);
        probe.mix().loads
    }
}

impl std::fmt::Debug for FmiKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FmiKernel")
            .field("reads", &self.reads.len())
            .field("index_bytes", &self.index.heap_bytes())
            .finish()
    }
}

// Compile-time check that the uninstrumented path exists too; never called.
#[allow(dead_code)]
fn _assert_probe_compat(k: &FmiKernel) {
    let _ = collect_smems_probed(&k.index, &k.reads[0], &k.config, &mut NullProbe);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn tiny_runs_and_is_deterministic() {
        let k = FmiKernel::prepare(DatasetSize::Tiny);
        let a = run_serial(&k);
        let b = run_parallel(&k, 4);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.tasks, 50);
        assert!(a.checksum != 0);
    }

    #[test]
    fn task_work_is_positive() {
        let k = FmiKernel::prepare(DatasetSize::Tiny);
        assert!(k.task_work(0) > 100, "a 151-bp read needs many occ lookups");
    }
}
