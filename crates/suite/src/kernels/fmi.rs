//! The **fmi** kernel: SMEM search over an FM-index (paper §III, from
//! BWA-MEM2).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_core::seq::DnaSeq;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::reads::{simulate_reads, ReadSimConfig};
use gb_fmi::bidir::BiIndex;
use gb_fmi::smem::{collect_smems, collect_smems_probed, SmemConfig};
use gb_uarch::cache::CacheProbe;
use gb_uarch::probe::NullProbe;
use std::sync::Arc;

/// Deterministic build product of the fmi prepare phase: the
/// bidirectional index and the simulated read set. Cacheable — rebuilding
/// from `(size, seed)` or decoding a stored copy yields bit-identical
/// contents.
pub struct FmiSubstrate {
    index: BiIndex,
    reads: Vec<DnaSeq>,
}

impl gb_substrate::Codec for FmiSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.index, e);
        gb_substrate::Codec::encode(&self.reads, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<FmiSubstrate> {
        Some(FmiSubstrate {
            index: gb_substrate::Codec::decode(d)?,
            reads: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared fmi workload: a bidirectional index plus reads to seed.
pub struct FmiKernel {
    sub: Arc<FmiSubstrate>,
    config: SmemConfig,
}

impl FmiKernel {
    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare(size: DatasetSize) -> FmiKernel {
        FmiKernel::instantiate(Arc::new(FmiKernel::build_substrate(size)))
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. Cheap: no data is copied.
    pub fn instantiate(sub: Arc<FmiSubstrate>) -> FmiKernel {
        FmiKernel {
            sub,
            config: SmemConfig::default(),
        }
    }

    /// Builds the index and simulates the read set.
    ///
    /// The reference is sized so the index working set exceeds the
    /// modelled LLC (as the paper's ~10 GB human FM-index dwarfs an 8 MB
    /// LLC), which is what makes the kernel memory-bound.
    pub fn build_substrate(size: DatasetSize) -> FmiSubstrate {
        let (genome_len, num_reads) = match size {
            DatasetSize::Tiny => (100_000, 50),
            DatasetSize::Small => (8_000_000, 2_000),
            DatasetSize::Large => (24_000_000, 20_000),
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: genome_len,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let reads = simulate_reads(
            &genome,
            &ReadSimConfig::short(num_reads),
            seeds::SHORT_READS,
        )
        .into_iter()
        .map(|r| r.record.seq)
        .collect();
        let index = BiIndex::build(&genome.concat());
        FmiSubstrate { index, reads }
    }

    /// The index heap footprint in bytes.
    pub fn index_bytes(&self) -> usize {
        self.sub.index.heap_bytes()
    }
}

impl Kernel for FmiKernel {
    fn id(&self) -> KernelId {
        KernelId::Fmi
    }

    fn num_tasks(&self) -> usize {
        self.sub.reads.len()
    }

    // PANIC-FREE: the pool only calls `run_task` with `i < num_tasks()`,
    // the documented `Kernel` contract.
    fn run_task(&self, i: usize) -> u64 {
        let smems = collect_smems(&self.sub.index, &self.sub.reads[i], &self.config);
        smems
            .iter()
            .map(|m| (m.end - m.start) as u64 ^ u64::from(m.interval.s).rotate_left(17))
            .fold(0, u64::wrapping_add)
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = collect_smems_probed(&self.sub.index, &self.sub.reads[i], &self.config, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        // Occ-table lookups: counted by a mix-only probe.
        let mut probe = gb_uarch::mix::MixProbe::new();
        let _ = collect_smems_probed(
            &self.sub.index,
            &self.sub.reads[i],
            &self.config,
            &mut probe,
        );
        probe.mix().loads
    }
}

impl std::fmt::Debug for FmiKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FmiKernel")
            .field("reads", &self.sub.reads.len())
            .field("index_bytes", &self.sub.index.heap_bytes())
            .finish()
    }
}

// Compile-time check that the uninstrumented path exists too; never called.
#[allow(dead_code)]
fn _assert_probe_compat(k: &FmiKernel) {
    let _ = collect_smems_probed(&k.sub.index, &k.sub.reads[0], &k.config, &mut NullProbe);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn tiny_runs_and_is_deterministic() {
        let k = FmiKernel::prepare(DatasetSize::Tiny);
        let a = run_serial(&k);
        let b = run_parallel(&k, 4);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.tasks, 50);
        assert!(a.checksum != 0);
    }

    #[test]
    fn task_work_is_positive() {
        let k = FmiKernel::prepare(DatasetSize::Tiny);
        assert!(k.task_work(0) > 100, "a 151-bp read needs many occ lookups");
    }
}
