//! The **grm** kernel: genomic relationship matrix (paper §III, from
//! PLINK2).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_core::matrix::Matrix;
use gb_datagen::genotypes::GenotypeMatrix;
use gb_popgen::grm::{grm_from_z_probed, standardize};
use gb_uarch::cache::CacheProbe;
use gb_uarch::probe::{NullProbe, Probe};
use std::sync::Arc;

/// Rows per task stripe (tasks = output row blocks, the regular-compute
/// parallel decomposition).
const STRIPE: usize = 16;

/// Deterministic build product of the grm prepare phase: the
/// standardized genotype matrix.
pub struct GrmSubstrate {
    z: Matrix,
}

impl gb_substrate::Codec for GrmSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.z, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<GrmSubstrate> {
        Some(GrmSubstrate {
            z: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared grm workload: the standardized genotype matrix.
pub struct GrmKernel {
    sub: Arc<GrmSubstrate>,
}

impl GrmKernel {
    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare(size: DatasetSize) -> GrmKernel {
        GrmKernel::instantiate(Arc::new(GrmKernel::build_substrate(size)))
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. Cheap: no data is copied.
    pub fn instantiate(sub: Arc<GrmSubstrate>) -> GrmKernel {
        GrmKernel { sub }
    }

    /// Generates the genotype matrix and standardizes it once (as PLINK
    /// does before the product).
    pub fn build_substrate(size: DatasetSize) -> GrmSubstrate {
        let (individuals, markers) = match size {
            DatasetSize::Tiny => (64, 500),
            DatasetSize::Small => (512, 4_000),
            DatasetSize::Large => (1_280, 12_000),
        };
        let geno = GenotypeMatrix::generate(individuals, markers, seeds::GENOTYPES);
        GrmSubstrate {
            z: standardize(&geno),
        }
    }

    fn stripe_product(&self, stripe: usize, probe: &mut CacheProbe) -> u64 {
        // Blocked loop order (j outer, stripe rows inner): each zj row is
        // streamed from memory once per stripe and reused from L1 across
        // the stripe's rows, the way PLINK's tiled product behaves.
        let (n, s) = self.sub.z.shape();
        let lo = stripe * STRIPE;
        let hi = (lo + STRIPE).min(n);
        let inv_s = 1.0 / s as f32;
        let mut acc = 0u64;
        for j in lo..n {
            let zj = self.sub.z.row(j);
            for i in lo..hi.min(j + 1) {
                let zi = self.sub.z.row(i);
                let mut dot = 0.0f32;
                for k in 0..s {
                    dot += zi[k] * zj[k];
                }
                // One 8-lane FMA per chunk; zj streamed on the stripe's
                // first row, zi rows resident and re-touched.
                for k in (0..s).step_by(8) {
                    if i == lo {
                        probe.load(gb_uarch::probe::addr_of(&zj[k]), 32);
                    }
                    probe.load(gb_uarch::probe::addr_of(&zi[k]), 32);
                    probe.simd_ops(1);
                }
                probe.int_ops(2);
                probe.branch(true);
                acc = acc.wrapping_add((dot * inv_s * 1e3) as i64 as u64);
            }
        }
        acc
    }
}

impl Kernel for GrmKernel {
    fn id(&self) -> KernelId {
        KernelId::Grm
    }

    fn num_tasks(&self) -> usize {
        self.sub.z.rows().div_ceil(STRIPE)
    }

    fn run_task(&self, i: usize) -> u64 {
        self.stripe_product_timed(i)
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = self.stripe_product(i, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        let (n, s) = self.sub.z.shape();
        let lo = i * STRIPE;
        let hi = (lo + STRIPE).min(n);
        ((lo..hi).map(|r| n - r).sum::<usize>() * s) as u64
    }
}

impl GrmKernel {
    // PANIC-FREE: `i`/`j` stay below `n` and `k` below `s`, the matrix's
    // own shape.
    fn stripe_product_timed(&self, stripe: usize) -> u64 {
        let (n, s) = self.sub.z.shape();
        let lo = stripe * STRIPE;
        let hi = (lo + STRIPE).min(n);
        let inv_s = 1.0 / s as f32;
        let mut acc = 0u64;
        for i in lo..hi {
            let zi = self.sub.z.row(i);
            for j in i..n {
                let zj = self.sub.z.row(j);
                let mut dot = 0.0f32;
                for k in 0..s {
                    dot += zi[k] * zj[k];
                }
                acc = acc.wrapping_add((dot * inv_s * 1e3) as i64 as u64);
            }
        }
        acc
    }

    /// Full-matrix reference using the library kernel (validation).
    pub fn full_grm(&self) -> Matrix {
        grm_from_z_probed(&self.sub.z, 32, &mut NullProbe)
    }
}

impl std::fmt::Debug for GrmKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (n, s) = self.sub.z.shape();
        f.debug_struct("GrmKernel")
            .field("individuals", &n)
            .field("markers", &s)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = GrmKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
        assert_eq!(k.num_tasks(), 4);
    }

    #[test]
    fn stripes_cover_the_full_product() {
        let k = GrmKernel::prepare(DatasetSize::Tiny);
        let g = k.full_grm();
        // Sum of stripe checksums must reflect every (i, j>=i) pair: the
        // stripe work adds up to the upper triangle.
        let total_work: u64 = (0..k.num_tasks()).map(|i| k.task_work(i)).sum();
        let (n, s) = k.sub.z.shape();
        assert_eq!(total_work, (n * (n + 1) / 2 * s) as u64);
        assert_eq!(g.shape(), (n, n));
    }
}
