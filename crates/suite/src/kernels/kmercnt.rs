//! The **kmer-cnt** kernel: canonical k-mer counting (paper §III, from
//! Flye).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_assembly::kmer_count::{count_kmers, count_kmers_probed, KmerCountParams};
use gb_core::seq::DnaSeq;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::reads::{simulate_reads, ReadSimConfig};
use gb_uarch::cache::CacheProbe;
use std::sync::Arc;

/// Deterministic build product of the kmer-cnt prepare phase: the
/// simulated long reads, pre-split into counting shards.
pub struct KmerCntSubstrate {
    shards: Vec<Vec<DnaSeq>>,
}

impl gb_substrate::Codec for KmerCntSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.shards, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<KmerCntSubstrate> {
        Some(KmerCntSubstrate {
            shards: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared kmer-cnt workload: long reads split into counting shards.
///
/// Each task counts one shard into a private table (the sharded layout
/// multithreaded counters use); shards are sized so the table working set
/// exceeds the modelled LLC, as the paper's ~8 GB table does.
pub struct KmerCntKernel {
    sub: Arc<KmerCntSubstrate>,
    params: KmerCountParams,
}

impl KmerCntKernel {
    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare(size: DatasetSize) -> KmerCntKernel {
        KmerCntKernel::instantiate(Arc::new(KmerCntKernel::build_substrate(size)))
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. Cheap: no data is copied.
    pub fn instantiate(sub: Arc<KmerCntSubstrate>) -> KmerCntKernel {
        KmerCntKernel {
            sub,
            params: KmerCountParams::default(),
        }
    }

    /// Simulates a long-read set and splits it into per-task shards.
    pub fn build_substrate(size: DatasetSize) -> KmerCntSubstrate {
        let (total_bases, shard_bases) = match size {
            DatasetSize::Tiny => (400_000usize, 200_000usize),
            DatasetSize::Small => (16_000_000, 2_000_000),
            DatasetSize::Large => (64_000_000, 2_000_000),
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: total_bases / 8,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let cfg = ReadSimConfig {
            num_reads: total_bases / 3000,
            ..ReadSimConfig::long(0)
        };
        let reads = simulate_reads(&genome, &cfg, seeds::LONG_READS);
        let mut shards: Vec<Vec<DnaSeq>> = Vec::new();
        let mut cur: Vec<DnaSeq> = Vec::new();
        let mut cur_bases = 0usize;
        for r in reads {
            cur_bases += r.record.len();
            cur.push(r.record.seq);
            if cur_bases >= shard_bases {
                shards.push(std::mem::take(&mut cur));
                cur_bases = 0;
            }
        }
        if !cur.is_empty() {
            shards.push(cur);
        }
        KmerCntSubstrate { shards }
    }

    /// The counting parameters (exposed for the ablation benches).
    pub fn params(&self) -> &KmerCountParams {
        &self.params
    }

    /// The read shards (exposed for the ablation benches).
    pub fn shards(&self) -> &[Vec<DnaSeq>] {
        &self.sub.shards
    }
}

impl Kernel for KmerCntKernel {
    fn id(&self) -> KernelId {
        KernelId::KmerCnt
    }

    fn num_tasks(&self) -> usize {
        self.sub.shards.len()
    }

    // PANIC-FREE: the pool only calls `run_task` with `i < num_tasks()`,
    // the documented `Kernel` contract.
    fn run_task(&self, i: usize) -> u64 {
        let (table, stats) = count_kmers(&self.sub.shards[i], &self.params);
        stats.kmers_processed.wrapping_add(table.len() as u64)
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = count_kmers_probed(&self.sub.shards[i], &self.params, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        self.sub.shards[i]
            .iter()
            .map(|r| r.len().saturating_sub(self.params.k - 1) as u64)
            .sum()
    }
}

impl std::fmt::Debug for KmerCntKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KmerCntKernel")
            .field("shards", &self.sub.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = KmerCntKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
        assert_eq!(k.num_tasks(), 2);
    }

    #[test]
    fn shard_tables_exceed_llc_at_small() {
        // The characterization depends on the table busting the 8 MB LLC.
        let k = KmerCntKernel::prepare(DatasetSize::Small);
        let (table, _) = count_kmers(&k.sub.shards[0], &k.params);
        assert!(
            table.heap_bytes() > 8 << 20,
            "table only {} bytes",
            table.heap_bytes()
        );
    }
}
