//! The twelve GenomicsBench kernels behind one interface.
//!
//! Every kernel prepares its dataset once ([`prepare`]) and then exposes
//! independent *tasks* — the unit of data parallelism from the paper's
//! Table III (reads, genome regions, read-pair anchor sets, consensus
//! windows, …). Generic runners execute the tasks serially, with dynamic
//! scheduling across threads (Fig. 7), or instrumented through the cache
//! simulator (Figs. 5/6/8/9).

pub mod abea;
pub mod bsw;
pub mod chain;
pub mod dbg;
pub mod fmi;
pub mod grm;
pub mod kmercnt;
pub mod nnbase;
pub mod nnvariant;
pub mod phmm;
pub mod pileup;
pub mod spoa;

use crate::dataset::DatasetSize;
use crate::pool::{run_dynamic, run_dynamic_instrumented};
pub use gb_dp::DpEngine;
use gb_obs::{Recorder, TaskStats};
use gb_uarch::cache::CacheProbe;
use gb_uarch::mix::InstructionMix;
use gb_uarch::topdown::{CoreModel, TopDownReport};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Identifier of one suite kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
// The variant names are the paper's kernel names; per-variant docs would
// just repeat the table in the crate docs.
#[allow(missing_docs)]
pub enum KernelId {
    Fmi,
    Bsw,
    Dbg,
    Phmm,
    Chain,
    Spoa,
    Abea,
    KmerCnt,
    Grm,
    Pileup,
    NnBase,
    NnVariant,
}

impl KernelId {
    /// All twelve kernels in the paper's presentation order.
    pub const ALL: [KernelId; 12] = [
        KernelId::Fmi,
        KernelId::Bsw,
        KernelId::Dbg,
        KernelId::Phmm,
        KernelId::Chain,
        KernelId::Spoa,
        KernelId::Abea,
        KernelId::Grm,
        KernelId::KmerCnt,
        KernelId::NnBase,
        KernelId::Pileup,
        KernelId::NnVariant,
    ];

    /// The paper's short name for the kernel.
    pub fn name(&self) -> &'static str {
        match self {
            KernelId::Fmi => "fmi",
            KernelId::Bsw => "bsw",
            KernelId::Dbg => "dbg",
            KernelId::Phmm => "phmm",
            KernelId::Chain => "chain",
            KernelId::Spoa => "spoa",
            KernelId::Abea => "abea",
            KernelId::KmerCnt => "kmer-cnt",
            KernelId::Grm => "grm",
            KernelId::Pileup => "pileup",
            KernelId::NnBase => "nn-base",
            KernelId::NnVariant => "nn-variant",
        }
    }

    /// The tool the kernel was extracted from (paper §III).
    pub fn source_tool(&self) -> &'static str {
        match self {
            KernelId::Fmi => "BWA-MEM2",
            KernelId::Bsw => "BWA-MEM2",
            KernelId::Dbg => "Platypus",
            KernelId::Phmm => "GATK HaplotypeCaller",
            KernelId::Chain => "Minimap2",
            KernelId::Spoa => "Racon",
            KernelId::Abea => "Nanopolish/f5c",
            KernelId::KmerCnt => "Flye",
            KernelId::Grm => "PLINK2",
            KernelId::Pileup => "Medaka",
            KernelId::NnBase => "Bonito",
            KernelId::NnVariant => "Clair",
        }
    }

    /// The pipeline the kernel belongs to (Fig. 1).
    pub fn pipeline(&self) -> &'static str {
        match self {
            KernelId::Fmi
            | KernelId::Bsw
            | KernelId::Dbg
            | KernelId::Phmm
            | KernelId::NnVariant => "reference-guided assembly",
            KernelId::Chain
            | KernelId::Spoa
            | KernelId::KmerCnt
            | KernelId::Abea
            | KernelId::Pileup => "de-novo assembly / polishing",
            KernelId::Grm => "population genomics",
            KernelId::NnBase => "basecalling",
        }
    }

    /// Parallelism motif (paper Table II).
    pub fn motif(&self) -> &'static str {
        match self {
            KernelId::Fmi => "index lookup (irregular memory)",
            KernelId::Bsw => "2-D banded DP, integer",
            KernelId::Dbg => "graph construction + hash table",
            KernelId::Phmm => "2-D DP, floating point",
            KernelId::Chain => "1-D DP, bounded predecessor scan",
            KernelId::Spoa => "graph-sequence DP",
            KernelId::Abea => "adaptive banded DP, floating point",
            KernelId::KmerCnt => "hash-table update (irregular memory)",
            KernelId::Grm => "dense matrix multiplication",
            KernelId::Pileup => "record parsing, random access",
            KernelId::NnBase => "dense CNN inference (GPU)",
            KernelId::NnVariant => "RNN inference",
        }
    }

    /// Table III's data-parallelism granularity, or `None` for the
    /// regular-compute kernels the table omits.
    pub fn granularity(&self) -> Option<(&'static str, &'static str)> {
        match self {
            KernelId::Fmi => Some(("read", "# Occ table lookups")),
            KernelId::Bsw => Some(("seed (sequence pair)", "# cell updates")),
            KernelId::Dbg => Some(("genome region", "# hash table lookups")),
            KernelId::Phmm => Some(("genome region", "# cell updates")),
            KernelId::Chain => Some(("read pair", "# input anchors")),
            KernelId::Spoa => Some(("read chunk window", "# cell updates")),
            KernelId::Abea => Some(("read", "# band cells")),
            KernelId::Pileup => Some(("genome region", "# record lookups")),
            KernelId::KmerCnt | KernelId::Grm | KernelId::NnBase | KernelId::NnVariant => None,
        }
    }

    /// Whether the kernel runs on the CPU in the original suite
    /// (nn-base is GPU-only; nn-variant's characterization failed under
    /// nvprof in the paper) — the CPU figures (5/6/8/9) cover these ten.
    pub fn is_cpu(&self) -> bool {
        !matches!(self, KernelId::NnBase | KernelId::NnVariant)
    }

    /// Unit of [`Kernel::task_work`] — the paper's per-kernel throughput
    /// denominator (DP cell updates, k-mers, anchors, Occ lookups, …).
    /// `<work_unit>/s` is the throughput the run manifest records.
    pub fn work_unit(&self) -> &'static str {
        match self {
            KernelId::Fmi => "occ_lookups",
            KernelId::Bsw | KernelId::Phmm | KernelId::Spoa | KernelId::Abea => "cells",
            KernelId::Dbg => "hash_lookups",
            KernelId::Chain => "anchors",
            KernelId::KmerCnt => "kmers",
            KernelId::Grm => "mac_ops",
            KernelId::Pileup => "pileup_ops",
            KernelId::NnBase | KernelId::NnVariant => "flops",
        }
    }

    /// Memory-level-parallelism hint for the top-down model: serial
    /// pointer-chase-like kernels overlap few misses; blocked compute
    /// kernels overlap many.
    pub fn mlp_hint(&self) -> f64 {
        match self {
            KernelId::Fmi => 1.6,
            KernelId::KmerCnt => 2.5,
            KernelId::Pileup => 3.0,
            KernelId::Dbg => 4.0,
            KernelId::Spoa => 3.0,
            _ => 4.0,
        }
    }
}

impl std::str::FromStr for KernelId {
    type Err = String;

    fn from_str(s: &str) -> Result<KernelId, String> {
        KernelId::ALL
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown kernel '{s}'"))
    }
}

/// Outcome of executing every task of a kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Tasks executed.
    pub tasks: usize,
    /// Order-insensitive checksum over task outputs (detects divergence
    /// between serial and parallel execution).
    pub checksum: u64,
    /// Per-task latency percentiles and worker utilization; present only
    /// on instrumented runs ([`run_parallel_instrumented`]).
    pub task_stats: Option<TaskStats>,
}

/// One kernel's microarchitectural characterization (from the simulated
/// hierarchy, over a bounded sample of tasks).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Dynamic instruction mix (Fig. 5).
    pub mix: InstructionMix,
    /// Cache statistics (Figs. 6 and 8).
    pub cache: gb_uarch::cache::CacheStats,
    /// Top-down analysis (Figs. 8 and 9).
    pub topdown: TopDownReport,
    /// DRAM bytes per kilo-instruction (Fig. 6).
    pub bpki: f64,
    /// Tasks sampled.
    pub tasks_sampled: usize,
}

/// A prepared kernel: dataset in memory, tasks ready to run.
pub trait Kernel: Send + Sync {
    /// Which kernel this is.
    fn id(&self) -> KernelId;

    /// Number of independent tasks.
    fn num_tasks(&self) -> usize;

    /// Executes task `i` on the timed (uninstrumented) path, returning a
    /// checksum contribution.
    fn run_task(&self, i: usize) -> u64;

    /// Executes task `i` with instrumentation.
    fn characterize_task(&self, i: usize, probe: &mut CacheProbe);

    /// The per-task work measure of Table III / Fig. 4 (cell updates,
    /// lookups, anchors, …).
    fn task_work(&self, i: usize) -> u64;

    /// Engine- or kernel-specific gauges worth exporting alongside run
    /// metrics (name, value) — e.g. the bsw SIMD engine's dead-slot
    /// fractions. Most kernels have none.
    fn export_gauges(&self) -> Vec<(String, f64)> {
        Vec::new()
    }
}

/// Prepares the dataset for `id` at `size`.
pub fn prepare(id: KernelId, size: DatasetSize) -> Box<dyn Kernel> {
    match id {
        KernelId::Fmi => Box::new(fmi::FmiKernel::prepare(size)),
        KernelId::Bsw => Box::new(bsw::BswKernel::prepare(size)),
        KernelId::Dbg => Box::new(dbg::DbgKernel::prepare(size)),
        KernelId::Phmm => Box::new(phmm::PhmmKernel::prepare(size)),
        KernelId::Chain => Box::new(chain::ChainKernel::prepare(size)),
        KernelId::Spoa => Box::new(spoa::SpoaKernel::prepare(size)),
        KernelId::Abea => Box::new(abea::AbeaKernel::prepare(size)),
        KernelId::KmerCnt => Box::new(kmercnt::KmerCntKernel::prepare(size)),
        KernelId::Grm => Box::new(grm::GrmKernel::prepare(size)),
        KernelId::Pileup => Box::new(pileup::PileupKernel::prepare(size)),
        KernelId::NnBase => Box::new(nnbase::NnBaseKernel::prepare(size)),
        KernelId::NnVariant => Box::new(nnvariant::NnVariantKernel::prepare(size)),
    }
}

/// Prepares the dataset for `id` at `size` with an explicit DP engine.
/// Only the four DP-motif kernels (bsw, phmm, spoa, abea) have a SIMD
/// fast path; every other kernel ignores the engine and behaves exactly
/// as [`prepare`].
pub fn prepare_dp(id: KernelId, size: DatasetSize, engine: DpEngine) -> Box<dyn Kernel> {
    match id {
        KernelId::Bsw => Box::new(bsw::BswKernel::prepare_with(size, engine)),
        KernelId::Phmm => Box::new(phmm::PhmmKernel::prepare_with(size, engine)),
        KernelId::Spoa => Box::new(spoa::SpoaKernel::prepare_with(size, engine)),
        KernelId::Abea => Box::new(abea::AbeaKernel::prepare_with(size, engine)),
        _ => prepare(id, size),
    }
}

/// Runs every task serially.
pub fn run_serial(kernel: &dyn Kernel) -> RunStats {
    run_parallel(kernel, 1)
}

/// Runs every task with dynamic scheduling over `threads` workers.
pub fn run_parallel(kernel: &dyn Kernel, threads: usize) -> RunStats {
    let n = kernel.num_tasks();
    let (checksum, elapsed) = run_dynamic(n, threads, |i| kernel.run_task(i));
    RunStats {
        elapsed,
        tasks: n,
        checksum,
        task_stats: None,
    }
}

/// Like [`run_parallel`], but records per-task latencies and per-worker
/// busy/idle time (`stats.task_stats` is always `Some`), and — when
/// `recorder` is enabled — emits one span per task, named after the
/// kernel, onto the recorder.
pub fn run_parallel_instrumented<R: Recorder + ?Sized>(
    kernel: &dyn Kernel,
    threads: usize,
    recorder: &R,
) -> RunStats {
    let n = kernel.num_tasks();
    let name = kernel.id().name();
    let (checksum, elapsed, task_stats) =
        run_dynamic_instrumented(n, threads, |i| kernel.run_task(i), recorder, name);
    RunStats {
        elapsed,
        tasks: n,
        checksum,
        task_stats: Some(task_stats),
    }
}

/// Characterizes the kernel on up to `max_tasks` tasks (instrumented runs
/// are 1–2 orders of magnitude slower than timed runs, so the paper-style
/// statistics are gathered on a representative sample). The first task is
/// replayed as a cache warm-up so steady-state behaviour is measured, as
/// hardware-counter sampling over a long run would.
pub fn characterize(kernel: &dyn Kernel, max_tasks: usize) -> Characterization {
    let mut probe = CacheProbe::skylake_like();
    let total = kernel.num_tasks();
    let n = total.min(max_tasks.max(1));
    // Warm-up pass: shared structures (indexes, tables, model weights)
    // and the allocator's steady-state address reuse become cache-warm,
    // as they would be mid-run. The measured pass then uses *different*
    // tasks where possible, so per-task data (reads, regions) is cold —
    // exactly the steady state counter sampling over a long run sees.
    for i in 0..n {
        kernel.characterize_task(i, &mut probe);
    }
    probe.reset_stats();
    let start = if total >= 2 * n { n } else { total - n };
    for i in start..start + n {
        kernel.characterize_task(i, &mut probe);
    }
    let bpki = probe.bpki();
    let (mix, cache) = probe.into_parts();
    let topdown = CoreModel::with_mlp(kernel.id().mlp_hint()).analyze(&mix, &cache);
    Characterization {
        mix,
        cache,
        topdown,
        bpki,
        tasks_sampled: n,
    }
}

/// Runs the abea SIMT model on the given dataset tier (Tables IV–V).
pub fn abea_gpu_report(size: DatasetSize) -> gb_simt::exec::GpuKernelReport {
    abea::AbeaKernel::prepare(size).gpu_report()
}

/// Runs the nn-base SIMT model on the given dataset tier (Tables IV–V).
pub fn nnbase_gpu_report(size: DatasetSize) -> gb_simt::exec::GpuKernelReport {
    nnbase::NnBaseKernel::prepare(size).gpu_report()
}

/// Runs the bsw inter-sequence batch model at several configurations
/// (Fig. 3): 16 lanes unsorted, 16 lanes length-sorted, 8 lanes unsorted,
/// the executed i32 lockstep kernel, and the production i16 SoA SIMD
/// engine (unsorted and length-sorted, for the slot-efficiency delta).
pub fn bsw_batch_reports(size: DatasetSize) -> Vec<(String, gb_dp::bsw::BatchReport)> {
    let k = bsw::BswKernel::prepare(size);
    vec![
        ("16 lanes, unsorted".to_string(), k.batch_report(16, false)),
        (
            "16 lanes, length-sorted".to_string(),
            k.batch_report(16, true),
        ),
        ("8 lanes, unsorted".to_string(), k.batch_report(8, false)),
        (
            "16 lanes, executed lockstep".to_string(),
            k.lockstep_report(false),
        ),
        (
            "i16 SIMD engine, unsorted".to_string(),
            k.simd_report(false),
        ),
        (
            "i16 SIMD engine, length-sorted".to_string(),
            k.simd_report(true),
        ),
    ]
}

/// Total data-parallel work across every task, in the kernel's
/// [`KernelId::work_unit`]s — the numerator of the manifest's
/// throughput counters. Some kernels re-execute their tasks to count
/// work, so this costs up to one extra serial pass; callers gather it
/// only when exporting metrics or manifests.
pub fn total_work(kernel: &dyn Kernel) -> u64 {
    (0..kernel.num_tasks())
        .map(|i| kernel.task_work(i))
        .fold(0u64, u64::wrapping_add)
}

/// Per-task work distribution statistics (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkDistribution {
    /// Mean work per task.
    pub mean: f64,
    /// Maximum work over tasks.
    pub max: u64,
    /// Minimum work over tasks.
    pub min: u64,
    /// Max/mean imbalance ratio (the paper reports 4.1x–8.3x, up to
    /// 1000x for phmm outliers).
    pub imbalance: f64,
}

/// Computes the Fig. 4 work-imbalance statistics.
pub fn work_distribution(kernel: &dyn Kernel) -> WorkDistribution {
    let works: Vec<u64> = (0..kernel.num_tasks())
        .map(|i| kernel.task_work(i))
        .collect();
    let sum: u64 = works.iter().sum();
    let mean = if works.is_empty() {
        0.0
    } else {
        sum as f64 / works.len() as f64
    };
    let max = works.iter().copied().max().unwrap_or(0);
    let min = works.iter().copied().min().unwrap_or(0);
    WorkDistribution {
        mean,
        max,
        min,
        imbalance: if mean > 0.0 { max as f64 / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_parse() {
        for id in KernelId::ALL {
            assert_eq!(id.name().parse::<KernelId>().unwrap(), id);
        }
        assert!("bwt".parse::<KernelId>().is_err());
    }

    #[test]
    fn twelve_kernels() {
        assert_eq!(KernelId::ALL.len(), 12);
        let names: std::collections::HashSet<_> = KernelId::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn every_kernel_names_a_work_unit() {
        for id in KernelId::ALL {
            assert!(!id.work_unit().is_empty());
        }
        assert_eq!(KernelId::Bsw.work_unit(), "cells");
        assert_eq!(KernelId::KmerCnt.work_unit(), "kmers");
    }

    #[test]
    fn total_work_matches_distribution_sum() {
        let kernel = prepare(KernelId::Chain, DatasetSize::Tiny);
        let d = work_distribution(kernel.as_ref());
        let total = total_work(kernel.as_ref());
        assert!(total > 0);
        assert_eq!(total as f64, d.mean * kernel.num_tasks() as f64);
    }

    #[test]
    fn irregular_kernels_have_granularity() {
        assert!(KernelId::Fmi.granularity().is_some());
        assert!(KernelId::Grm.granularity().is_none());
        let with = KernelId::ALL
            .iter()
            .filter(|k| k.granularity().is_some())
            .count();
        assert_eq!(with, 8); // Table III lists the 8 irregular kernels
    }
}
