//! The twelve GenomicsBench kernels behind one interface.
//!
//! Every kernel prepares its dataset once ([`prepare`]) and then exposes
//! independent *tasks* — the unit of data parallelism from the paper's
//! Table III (reads, genome regions, read-pair anchor sets, consensus
//! windows, …). Generic runners execute the tasks serially, with dynamic
//! scheduling across threads (Fig. 7), or instrumented through the cache
//! simulator (Figs. 5/6/8/9).

pub mod abea;
pub mod bsw;
pub mod chain;
pub mod dbg;
pub mod fmi;
pub mod grm;
pub mod kmercnt;
pub mod nnbase;
pub mod nnvariant;
pub mod phmm;
pub mod pileup;
pub mod spoa;

use crate::dataset::DatasetSize;
use crate::pool::{run_dynamic, run_dynamic_instrumented};
pub use gb_dp::DpEngine;
use gb_obs::{Recorder, TaskStats};
use gb_substrate::{CacheOutcome, SubstrateCache, SubstrateKey};
use gb_uarch::cache::CacheProbe;
use gb_uarch::mix::InstructionMix;
use gb_uarch::topdown::{CoreModel, TopDownReport};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Identifier of one suite kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
// The variant names are the paper's kernel names; per-variant docs would
// just repeat the table in the crate docs.
#[allow(missing_docs)]
pub enum KernelId {
    Fmi,
    Bsw,
    Dbg,
    Phmm,
    Chain,
    Spoa,
    Abea,
    KmerCnt,
    Grm,
    Pileup,
    NnBase,
    NnVariant,
}

impl KernelId {
    /// All twelve kernels in the paper's presentation order.
    pub const ALL: [KernelId; 12] = [
        KernelId::Fmi,
        KernelId::Bsw,
        KernelId::Dbg,
        KernelId::Phmm,
        KernelId::Chain,
        KernelId::Spoa,
        KernelId::Abea,
        KernelId::Grm,
        KernelId::KmerCnt,
        KernelId::NnBase,
        KernelId::Pileup,
        KernelId::NnVariant,
    ];

    /// The paper's short name for the kernel.
    pub fn name(&self) -> &'static str {
        match self {
            KernelId::Fmi => "fmi",
            KernelId::Bsw => "bsw",
            KernelId::Dbg => "dbg",
            KernelId::Phmm => "phmm",
            KernelId::Chain => "chain",
            KernelId::Spoa => "spoa",
            KernelId::Abea => "abea",
            KernelId::KmerCnt => "kmer-cnt",
            KernelId::Grm => "grm",
            KernelId::Pileup => "pileup",
            KernelId::NnBase => "nn-base",
            KernelId::NnVariant => "nn-variant",
        }
    }

    /// The tool the kernel was extracted from (paper §III).
    pub fn source_tool(&self) -> &'static str {
        match self {
            KernelId::Fmi => "BWA-MEM2",
            KernelId::Bsw => "BWA-MEM2",
            KernelId::Dbg => "Platypus",
            KernelId::Phmm => "GATK HaplotypeCaller",
            KernelId::Chain => "Minimap2",
            KernelId::Spoa => "Racon",
            KernelId::Abea => "Nanopolish/f5c",
            KernelId::KmerCnt => "Flye",
            KernelId::Grm => "PLINK2",
            KernelId::Pileup => "Medaka",
            KernelId::NnBase => "Bonito",
            KernelId::NnVariant => "Clair",
        }
    }

    /// The pipeline the kernel belongs to (Fig. 1).
    pub fn pipeline(&self) -> &'static str {
        match self {
            KernelId::Fmi
            | KernelId::Bsw
            | KernelId::Dbg
            | KernelId::Phmm
            | KernelId::NnVariant => "reference-guided assembly",
            KernelId::Chain
            | KernelId::Spoa
            | KernelId::KmerCnt
            | KernelId::Abea
            | KernelId::Pileup => "de-novo assembly / polishing",
            KernelId::Grm => "population genomics",
            KernelId::NnBase => "basecalling",
        }
    }

    /// Parallelism motif (paper Table II).
    pub fn motif(&self) -> &'static str {
        match self {
            KernelId::Fmi => "index lookup (irregular memory)",
            KernelId::Bsw => "2-D banded DP, integer",
            KernelId::Dbg => "graph construction + hash table",
            KernelId::Phmm => "2-D DP, floating point",
            KernelId::Chain => "1-D DP, bounded predecessor scan",
            KernelId::Spoa => "graph-sequence DP",
            KernelId::Abea => "adaptive banded DP, floating point",
            KernelId::KmerCnt => "hash-table update (irregular memory)",
            KernelId::Grm => "dense matrix multiplication",
            KernelId::Pileup => "record parsing, random access",
            KernelId::NnBase => "dense CNN inference (GPU)",
            KernelId::NnVariant => "RNN inference",
        }
    }

    /// Table III's data-parallelism granularity, or `None` for the
    /// regular-compute kernels the table omits.
    pub fn granularity(&self) -> Option<(&'static str, &'static str)> {
        match self {
            KernelId::Fmi => Some(("read", "# Occ table lookups")),
            KernelId::Bsw => Some(("seed (sequence pair)", "# cell updates")),
            KernelId::Dbg => Some(("genome region", "# hash table lookups")),
            KernelId::Phmm => Some(("genome region", "# cell updates")),
            KernelId::Chain => Some(("read pair", "# input anchors")),
            KernelId::Spoa => Some(("read chunk window", "# cell updates")),
            KernelId::Abea => Some(("read", "# band cells")),
            KernelId::Pileup => Some(("genome region", "# record lookups")),
            KernelId::KmerCnt | KernelId::Grm | KernelId::NnBase | KernelId::NnVariant => None,
        }
    }

    /// Whether the kernel runs on the CPU in the original suite
    /// (nn-base is GPU-only; nn-variant's characterization failed under
    /// nvprof in the paper) — the CPU figures (5/6/8/9) cover these ten.
    pub fn is_cpu(&self) -> bool {
        !matches!(self, KernelId::NnBase | KernelId::NnVariant)
    }

    /// Unit of [`Kernel::task_work`] — the paper's per-kernel throughput
    /// denominator (DP cell updates, k-mers, anchors, Occ lookups, …).
    /// `<work_unit>/s` is the throughput the run manifest records.
    pub fn work_unit(&self) -> &'static str {
        match self {
            KernelId::Fmi => "occ_lookups",
            KernelId::Bsw | KernelId::Phmm | KernelId::Spoa | KernelId::Abea => "cells",
            KernelId::Dbg => "hash_lookups",
            KernelId::Chain => "anchors",
            KernelId::KmerCnt => "kmers",
            KernelId::Grm => "mac_ops",
            KernelId::Pileup => "pileup_ops",
            KernelId::NnBase | KernelId::NnVariant => "flops",
        }
    }

    /// Memory-level-parallelism hint for the top-down model: serial
    /// pointer-chase-like kernels overlap few misses; blocked compute
    /// kernels overlap many.
    pub fn mlp_hint(&self) -> f64 {
        match self {
            KernelId::Fmi => 1.6,
            KernelId::KmerCnt => 2.5,
            KernelId::Pileup => 3.0,
            KernelId::Dbg => 4.0,
            KernelId::Spoa => 3.0,
            _ => 4.0,
        }
    }
}

impl std::str::FromStr for KernelId {
    type Err = String;

    fn from_str(s: &str) -> Result<KernelId, String> {
        KernelId::ALL
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown kernel '{s}'"))
    }
}

/// Outcome of executing every task of a kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Tasks executed.
    pub tasks: usize,
    /// Order-insensitive checksum over task outputs (detects divergence
    /// between serial and parallel execution).
    pub checksum: u64,
    /// Per-task latency percentiles and worker utilization; present only
    /// on instrumented runs ([`run_parallel_instrumented`]).
    pub task_stats: Option<TaskStats>,
}

/// One kernel's microarchitectural characterization (from the simulated
/// hierarchy, over a bounded sample of tasks).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Dynamic instruction mix (Fig. 5).
    pub mix: InstructionMix,
    /// Cache statistics (Figs. 6 and 8).
    pub cache: gb_uarch::cache::CacheStats,
    /// Top-down analysis (Figs. 8 and 9).
    pub topdown: TopDownReport,
    /// DRAM bytes per kilo-instruction (Fig. 6).
    pub bpki: f64,
    /// Tasks sampled.
    pub tasks_sampled: usize,
}

/// A prepared kernel: dataset in memory, tasks ready to run.
pub trait Kernel: Send + Sync {
    /// Which kernel this is.
    fn id(&self) -> KernelId;

    /// Number of independent tasks.
    fn num_tasks(&self) -> usize;

    /// Executes task `i` on the timed (uninstrumented) path, returning a
    /// checksum contribution.
    fn run_task(&self, i: usize) -> u64;

    /// Executes task `i` with instrumentation.
    fn characterize_task(&self, i: usize, probe: &mut CacheProbe);

    /// The per-task work measure of Table III / Fig. 4 (cell updates,
    /// lookups, anchors, …).
    fn task_work(&self, i: usize) -> u64;

    /// Engine- or kernel-specific gauges worth exporting alongside run
    /// metrics (name, value) — e.g. the bsw SIMD engine's dead-slot
    /// fractions. Most kernels have none.
    fn export_gauges(&self) -> Vec<(String, f64)> {
        Vec::new()
    }
}

/// Prepares the dataset for `id` at `size`.
pub fn prepare(id: KernelId, size: DatasetSize) -> Box<dyn Kernel> {
    match id {
        KernelId::Fmi => Box::new(fmi::FmiKernel::prepare(size)),
        KernelId::Bsw => Box::new(bsw::BswKernel::prepare(size)),
        KernelId::Dbg => Box::new(dbg::DbgKernel::prepare(size)),
        KernelId::Phmm => Box::new(phmm::PhmmKernel::prepare(size)),
        KernelId::Chain => Box::new(chain::ChainKernel::prepare(size)),
        KernelId::Spoa => Box::new(spoa::SpoaKernel::prepare(size)),
        KernelId::Abea => Box::new(abea::AbeaKernel::prepare(size)),
        KernelId::KmerCnt => Box::new(kmercnt::KmerCntKernel::prepare(size)),
        KernelId::Grm => Box::new(grm::GrmKernel::prepare(size)),
        KernelId::Pileup => Box::new(pileup::PileupKernel::prepare(size)),
        KernelId::NnBase => Box::new(nnbase::NnBaseKernel::prepare(size)),
        KernelId::NnVariant => Box::new(nnvariant::NnVariantKernel::prepare(size)),
    }
}

/// Prepares the dataset for `id` at `size` with an explicit DP engine.
/// Only the four DP-motif kernels (bsw, phmm, spoa, abea) have a SIMD
/// fast path; every other kernel ignores the engine and behaves exactly
/// as [`prepare`].
pub fn prepare_dp(id: KernelId, size: DatasetSize, engine: DpEngine) -> Box<dyn Kernel> {
    match id {
        KernelId::Bsw => Box::new(bsw::BswKernel::prepare_with(size, engine)),
        KernelId::Phmm => Box::new(phmm::PhmmKernel::prepare_with(size, engine)),
        KernelId::Spoa => Box::new(spoa::SpoaKernel::prepare_with(size, engine)),
        KernelId::Abea => Box::new(abea::AbeaKernel::prepare_with(size, engine)),
        _ => prepare(id, size),
    }
}

/// The substrate seed for `id`: a fold of the dataset seeds the kernel's
/// build actually draws from (see each kernel's `build_substrate`). Part
/// of the cache key, so regenerating a dataset stream invalidates exactly
/// the substrates built from it.
pub fn substrate_seed(id: KernelId) -> u64 {
    use crate::dataset::seeds;
    match id {
        KernelId::Fmi => seeds::GENOME ^ seeds::SHORT_READS,
        KernelId::Bsw => seeds::GENOME ^ (seeds::SHORT_READS ^ 0xB5),
        KernelId::Dbg => seeds::GENOME ^ seeds::REGIONS,
        KernelId::Phmm => seeds::GENOME ^ (seeds::REGIONS ^ 0x9A),
        KernelId::Chain => seeds::ANCHORS,
        KernelId::Spoa => seeds::GENOME ^ (seeds::LONG_READS ^ 0x50A),
        KernelId::Abea => seeds::GENOME ^ seeds::SIGNALS,
        KernelId::KmerCnt => seeds::GENOME ^ seeds::LONG_READS,
        KernelId::Grm => seeds::GENOTYPES,
        KernelId::Pileup => seeds::GENOME ^ seeds::LONG_READS,
        KernelId::NnBase => seeds::WEIGHTS ^ seeds::GENOME ^ (seeds::SIGNALS ^ 0xBA5E),
        KernelId::NnVariant => {
            seeds::GENOME ^ (seeds::LONG_READS ^ 0xC1A1) ^ (seeds::WEIGHTS ^ 0xC1)
        }
    }
}

/// The cache key for `id`'s substrate at `size`: kernel name, tier name,
/// the folded dataset seeds, and the substrate schema version.
pub fn substrate_key(id: KernelId, size: DatasetSize) -> SubstrateKey {
    SubstrateKey::new(id.name(), size.name(), substrate_seed(id))
}

/// How a kernel's prepare phase went: its wall time and whether the
/// substrate came out of the cache (memo or disk) rather than a cold
/// build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepareStats {
    /// Wall-clock time of the whole prepare (cache probe + build or load
    /// + instantiate).
    pub wall: Duration,
    /// Whether the substrate was served from the cache.
    pub cache_hit: bool,
}

/// Like [`prepare_dp`], but routes the expensive substrate build through
/// `cache` and reports how the prepare went. With a disabled cache this
/// is exactly a cold [`prepare_dp`].
pub fn prepare_cached(
    id: KernelId,
    size: DatasetSize,
    engine: DpEngine,
    cache: &SubstrateCache,
) -> (Box<dyn Kernel>, PrepareStats) {
    let start = std::time::Instant::now();
    let key = substrate_key(id, size);
    let (kernel, outcome): (Box<dyn Kernel>, CacheOutcome) = match id {
        KernelId::Fmi => {
            let (sub, o) = cache.get_or_build(&key, || fmi::FmiKernel::build_substrate(size));
            (Box::new(fmi::FmiKernel::instantiate(sub)), o)
        }
        KernelId::Bsw => {
            let (sub, o) = cache.get_or_build(&key, || bsw::BswKernel::build_substrate(size));
            (Box::new(bsw::BswKernel::instantiate(sub, engine)), o)
        }
        KernelId::Dbg => {
            let (sub, o) = cache.get_or_build(&key, || dbg::DbgKernel::build_substrate(size));
            (Box::new(dbg::DbgKernel::instantiate(sub)), o)
        }
        KernelId::Phmm => {
            let (sub, o) = cache.get_or_build(&key, || phmm::PhmmKernel::build_substrate(size));
            (Box::new(phmm::PhmmKernel::instantiate(sub, engine)), o)
        }
        KernelId::Chain => {
            let (sub, o) = cache.get_or_build(&key, || chain::ChainKernel::build_substrate(size));
            (Box::new(chain::ChainKernel::instantiate(sub)), o)
        }
        KernelId::Spoa => {
            let (sub, o) = cache.get_or_build(&key, || spoa::SpoaKernel::build_substrate(size));
            (Box::new(spoa::SpoaKernel::instantiate(sub, engine)), o)
        }
        KernelId::Abea => {
            let (sub, o) = cache.get_or_build(&key, || abea::AbeaKernel::build_substrate(size));
            (Box::new(abea::AbeaKernel::instantiate(sub, engine)), o)
        }
        KernelId::KmerCnt => {
            let (sub, o) =
                cache.get_or_build(&key, || kmercnt::KmerCntKernel::build_substrate(size));
            (Box::new(kmercnt::KmerCntKernel::instantiate(sub)), o)
        }
        KernelId::Grm => {
            let (sub, o) = cache.get_or_build(&key, || grm::GrmKernel::build_substrate(size));
            (Box::new(grm::GrmKernel::instantiate(sub)), o)
        }
        KernelId::Pileup => {
            let (sub, o) = cache.get_or_build(&key, || pileup::PileupKernel::build_substrate(size));
            (Box::new(pileup::PileupKernel::instantiate(sub)), o)
        }
        KernelId::NnBase => {
            let (sub, o) = cache.get_or_build(&key, || nnbase::NnBaseKernel::build_substrate(size));
            (Box::new(nnbase::NnBaseKernel::instantiate(sub)), o)
        }
        KernelId::NnVariant => {
            let (sub, o) =
                cache.get_or_build(&key, || nnvariant::NnVariantKernel::build_substrate(size));
            (Box::new(nnvariant::NnVariantKernel::instantiate(sub)), o)
        }
    };
    (
        kernel,
        PrepareStats {
            wall: start.elapsed(),
            cache_hit: outcome.is_hit(),
        },
    )
}

/// Result of warming one kernel's substrate: whether it was already
/// cached (memo or disk) and how long the build or load took. The wall
/// time is the pool-measured per-kernel duration, so a run can attribute
/// its prepare cost even when the warm pre-pass overlapped the builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmOutcome {
    /// The kernel whose substrate was warmed.
    pub id: KernelId,
    /// Whether the substrate was served from the cache.
    pub cache_hit: bool,
    /// Wall time of this kernel's build or load inside the pool.
    pub wall: Duration,
}

/// Populates `cache` with the substrates for `ids`, building cold ones in
/// parallel over the suite's dynamic worker pool, and reports per-kernel
/// outcomes. A no-op returning no outcomes when the cache is disabled
/// (there would be nowhere to keep the results). After this,
/// [`prepare_cached`] for any of `ids` is a memo hit plus a cheap
/// instantiate.
pub fn warm_substrates(
    ids: &[KernelId],
    size: DatasetSize,
    cache: &SubstrateCache,
    threads: usize,
) -> Vec<WarmOutcome> {
    if !cache.is_enabled() || ids.is_empty() {
        return Vec::new();
    }
    let outcomes = std::sync::Mutex::new(Vec::with_capacity(ids.len()));
    let _ = run_dynamic(ids.len(), threads, |i| {
        let id = ids[i];
        let key = substrate_key(id, size);
        let start = std::time::Instant::now();
        let outcome = match id {
            KernelId::Fmi => {
                cache
                    .get_or_build(&key, || fmi::FmiKernel::build_substrate(size))
                    .1
            }
            KernelId::Bsw => {
                cache
                    .get_or_build(&key, || bsw::BswKernel::build_substrate(size))
                    .1
            }
            KernelId::Dbg => {
                cache
                    .get_or_build(&key, || dbg::DbgKernel::build_substrate(size))
                    .1
            }
            KernelId::Phmm => {
                cache
                    .get_or_build(&key, || phmm::PhmmKernel::build_substrate(size))
                    .1
            }
            KernelId::Chain => {
                cache
                    .get_or_build(&key, || chain::ChainKernel::build_substrate(size))
                    .1
            }
            KernelId::Spoa => {
                cache
                    .get_or_build(&key, || spoa::SpoaKernel::build_substrate(size))
                    .1
            }
            KernelId::Abea => {
                cache
                    .get_or_build(&key, || abea::AbeaKernel::build_substrate(size))
                    .1
            }
            KernelId::KmerCnt => {
                cache
                    .get_or_build(&key, || kmercnt::KmerCntKernel::build_substrate(size))
                    .1
            }
            KernelId::Grm => {
                cache
                    .get_or_build(&key, || grm::GrmKernel::build_substrate(size))
                    .1
            }
            KernelId::Pileup => {
                cache
                    .get_or_build(&key, || pileup::PileupKernel::build_substrate(size))
                    .1
            }
            KernelId::NnBase => {
                cache
                    .get_or_build(&key, || nnbase::NnBaseKernel::build_substrate(size))
                    .1
            }
            KernelId::NnVariant => {
                cache
                    .get_or_build(&key, || nnvariant::NnVariantKernel::build_substrate(size))
                    .1
            }
        };
        let hit = outcome.is_hit();
        outcomes
            .lock()
            .expect("warm outcomes lock")
            .push(WarmOutcome {
                id,
                cache_hit: hit,
                wall: start.elapsed(),
            });
        hit as u64
    });
    outcomes.into_inner().expect("warm outcomes lock")
}

/// Runs every task serially.
pub fn run_serial(kernel: &dyn Kernel) -> RunStats {
    run_parallel(kernel, 1)
}

/// Runs every task with dynamic scheduling over `threads` workers.
pub fn run_parallel(kernel: &dyn Kernel, threads: usize) -> RunStats {
    let n = kernel.num_tasks();
    let (checksum, elapsed) = run_dynamic(n, threads, |i| kernel.run_task(i));
    RunStats {
        elapsed,
        tasks: n,
        checksum,
        task_stats: None,
    }
}

/// Like [`run_parallel`], but records per-task latencies and per-worker
/// busy/idle time (`stats.task_stats` is always `Some`), and — when
/// `recorder` is enabled — emits one span per task, named after the
/// kernel, onto the recorder.
pub fn run_parallel_instrumented<R: Recorder + ?Sized>(
    kernel: &dyn Kernel,
    threads: usize,
    recorder: &R,
) -> RunStats {
    let n = kernel.num_tasks();
    let name = kernel.id().name();
    let (checksum, elapsed, task_stats) =
        run_dynamic_instrumented(n, threads, |i| kernel.run_task(i), recorder, name);
    RunStats {
        elapsed,
        tasks: n,
        checksum,
        task_stats: Some(task_stats),
    }
}

/// Characterizes the kernel on up to `max_tasks` tasks (instrumented runs
/// are 1–2 orders of magnitude slower than timed runs, so the paper-style
/// statistics are gathered on a representative sample). The first task is
/// replayed as a cache warm-up so steady-state behaviour is measured, as
/// hardware-counter sampling over a long run would.
pub fn characterize(kernel: &dyn Kernel, max_tasks: usize) -> Characterization {
    let mut probe = CacheProbe::skylake_like();
    let total = kernel.num_tasks();
    let n = total.min(max_tasks.max(1));
    // Warm-up pass: shared structures (indexes, tables, model weights)
    // and the allocator's steady-state address reuse become cache-warm,
    // as they would be mid-run. The measured pass then uses *different*
    // tasks where possible, so per-task data (reads, regions) is cold —
    // exactly the steady state counter sampling over a long run sees.
    for i in 0..n {
        kernel.characterize_task(i, &mut probe);
    }
    probe.reset_stats();
    let start = if total >= 2 * n { n } else { total - n };
    for i in start..start + n {
        kernel.characterize_task(i, &mut probe);
    }
    let bpki = probe.bpki();
    let (mix, cache) = probe.into_parts();
    let topdown = CoreModel::with_mlp(kernel.id().mlp_hint()).analyze(&mix, &cache);
    Characterization {
        mix,
        cache,
        topdown,
        bpki,
        tasks_sampled: n,
    }
}

/// Runs the abea SIMT model on the given dataset tier (Tables IV–V).
pub fn abea_gpu_report(size: DatasetSize) -> gb_simt::exec::GpuKernelReport {
    abea::AbeaKernel::prepare(size).gpu_report()
}

/// Runs the nn-base SIMT model on the given dataset tier (Tables IV–V).
pub fn nnbase_gpu_report(size: DatasetSize) -> gb_simt::exec::GpuKernelReport {
    nnbase::NnBaseKernel::prepare(size).gpu_report()
}

/// Runs the bsw inter-sequence batch model at several configurations
/// (Fig. 3): 16 lanes unsorted, 16 lanes length-sorted, 8 lanes unsorted,
/// the executed i32 lockstep kernel, and the production i16 SoA SIMD
/// engine (unsorted and length-sorted, for the slot-efficiency delta).
pub fn bsw_batch_reports(size: DatasetSize) -> Vec<(String, gb_dp::bsw::BatchReport)> {
    let k = bsw::BswKernel::prepare(size);
    vec![
        ("16 lanes, unsorted".to_string(), k.batch_report(16, false)),
        (
            "16 lanes, length-sorted".to_string(),
            k.batch_report(16, true),
        ),
        ("8 lanes, unsorted".to_string(), k.batch_report(8, false)),
        (
            "16 lanes, executed lockstep".to_string(),
            k.lockstep_report(false),
        ),
        (
            "i16 SIMD engine, unsorted".to_string(),
            k.simd_report(false),
        ),
        (
            "i16 SIMD engine, length-sorted".to_string(),
            k.simd_report(true),
        ),
    ]
}

/// Total data-parallel work across every task, in the kernel's
/// [`KernelId::work_unit`]s — the numerator of the manifest's
/// throughput counters. Some kernels re-execute their tasks to count
/// work, so this costs up to one extra serial pass; callers gather it
/// only when exporting metrics or manifests.
pub fn total_work(kernel: &dyn Kernel) -> u64 {
    (0..kernel.num_tasks())
        .map(|i| kernel.task_work(i))
        .fold(0u64, u64::wrapping_add)
}

/// Per-task work distribution statistics (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkDistribution {
    /// Mean work per task.
    pub mean: f64,
    /// Maximum work over tasks.
    pub max: u64,
    /// Minimum work over tasks.
    pub min: u64,
    /// Max/mean imbalance ratio (the paper reports 4.1x–8.3x, up to
    /// 1000x for phmm outliers).
    pub imbalance: f64,
}

/// Computes the Fig. 4 work-imbalance statistics.
pub fn work_distribution(kernel: &dyn Kernel) -> WorkDistribution {
    let works: Vec<u64> = (0..kernel.num_tasks())
        .map(|i| kernel.task_work(i))
        .collect();
    let sum: u64 = works.iter().sum();
    let mean = if works.is_empty() {
        0.0
    } else {
        sum as f64 / works.len() as f64
    };
    let max = works.iter().copied().max().unwrap_or(0);
    let min = works.iter().copied().min().unwrap_or(0);
    WorkDistribution {
        mean,
        max,
        min,
        imbalance: if mean > 0.0 { max as f64 / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_parse() {
        for id in KernelId::ALL {
            assert_eq!(id.name().parse::<KernelId>().unwrap(), id);
        }
        assert!("bwt".parse::<KernelId>().is_err());
    }

    #[test]
    fn twelve_kernels() {
        assert_eq!(KernelId::ALL.len(), 12);
        let names: std::collections::HashSet<_> = KernelId::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn every_kernel_names_a_work_unit() {
        for id in KernelId::ALL {
            assert!(!id.work_unit().is_empty());
        }
        assert_eq!(KernelId::Bsw.work_unit(), "cells");
        assert_eq!(KernelId::KmerCnt.work_unit(), "kmers");
    }

    #[test]
    fn total_work_matches_distribution_sum() {
        let kernel = prepare(KernelId::Chain, DatasetSize::Tiny);
        let d = work_distribution(kernel.as_ref());
        let total = total_work(kernel.as_ref());
        assert!(total > 0);
        assert_eq!(total as f64, d.mean * kernel.num_tasks() as f64);
    }

    #[test]
    fn prepare_cached_is_cold_then_hot_and_checksum_stable() {
        let cache = SubstrateCache::in_process();
        let (k1, s1) = prepare_cached(KernelId::Chain, DatasetSize::Tiny, DpEngine::Scalar, &cache);
        assert!(!s1.cache_hit, "first prepare must build");
        let (k2, s2) = prepare_cached(KernelId::Chain, DatasetSize::Tiny, DpEngine::Scalar, &cache);
        assert!(s2.cache_hit, "second prepare must hit the memo");
        let cold = prepare(KernelId::Chain, DatasetSize::Tiny);
        let want = run_serial(cold.as_ref()).checksum;
        assert_eq!(run_serial(k1.as_ref()).checksum, want);
        assert_eq!(run_serial(k2.as_ref()).checksum, want);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache = SubstrateCache::disabled();
        for _ in 0..2 {
            let (_, s) = prepare_cached(KernelId::Grm, DatasetSize::Tiny, DpEngine::Scalar, &cache);
            assert!(!s.cache_hit);
        }
    }

    #[test]
    fn warm_substrates_turns_prepares_into_hits() {
        let cache = SubstrateCache::in_process();
        let ids = [KernelId::Chain, KernelId::Grm, KernelId::Dbg];
        warm_substrates(&ids, DatasetSize::Tiny, &cache, 3);
        for id in ids {
            let (_, s) = prepare_cached(id, DatasetSize::Tiny, DpEngine::Scalar, &cache);
            assert!(s.cache_hit, "{} should be warm", id.name());
        }
    }

    #[test]
    fn substrate_keys_are_distinct_across_kernels_and_tiers() {
        let mut seen = std::collections::HashSet::new();
        for id in KernelId::ALL {
            for size in [DatasetSize::Tiny, DatasetSize::Small, DatasetSize::Large] {
                assert!(seen.insert(substrate_key(id, size).canonical()));
            }
        }
        assert_eq!(seen.len(), 36);
    }

    #[test]
    fn irregular_kernels_have_granularity() {
        assert!(KernelId::Fmi.granularity().is_some());
        assert!(KernelId::Grm.granularity().is_none());
        let with = KernelId::ALL
            .iter()
            .filter(|k| k.granularity().is_some())
            .count();
        assert_eq!(with, 8); // Table III lists the 8 irregular kernels
    }
}
