//! The **nn-base** kernel: neural basecalling (paper §III, from Bonito).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::signal::{simulate_signal, PoreModel, SignalSimConfig};
use gb_nn::basecaller::{Basecaller, BasecallerConfig};
use gb_simt::exec::GpuKernelReport;
use gb_simt::kernels::{bonito_like_layers, model_nn_base_gpu, GemmGpuParams};
use gb_uarch::cache::CacheProbe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Deterministic build product of the nn-base prepare phase: the
/// initialized network weights and the signal chunks to infer.
pub struct NnBaseSubstrate {
    model: Basecaller,
    chunks: Vec<Vec<f32>>,
}

impl gb_substrate::Codec for NnBaseSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.model, e);
        gb_substrate::Codec::encode(&self.chunks, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<NnBaseSubstrate> {
        Some(NnBaseSubstrate {
            model: gb_substrate::Codec::decode(d)?,
            chunks: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared nn-base workload: signal chunks ready for inference.
pub struct NnBaseKernel {
    sub: Arc<NnBaseSubstrate>,
}

impl NnBaseKernel {
    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare(size: DatasetSize) -> NnBaseKernel {
        NnBaseKernel::instantiate(Arc::new(NnBaseKernel::build_substrate(size)))
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. Cheap: no data is copied.
    pub fn instantiate(sub: Arc<NnBaseSubstrate>) -> NnBaseKernel {
        NnBaseKernel { sub }
    }

    /// Simulates raw nanopore signal and splits it into the model's
    /// 4,000-sample chunks.
    pub fn build_substrate(size: DatasetSize) -> NnBaseSubstrate {
        let num_chunks = match size {
            DatasetSize::Tiny => 2,
            DatasetSize::Small => 30,
            DatasetSize::Large => 300,
        };
        let config = BasecallerConfig::default();
        let model = Basecaller::new(&config, seeds::WEIGHTS);
        let genome = Genome::generate(
            &GenomeConfig {
                length: 200_000,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let pore = PoreModel::r9_like();
        let mut rng = StdRng::seed_from_u64(seeds::SIGNALS ^ 0xBA5E);
        let contig = genome.contig(0);
        let mut chunks = Vec::with_capacity(num_chunks);
        let mut raw_pool: Vec<f32> = Vec::new();
        while chunks.len() < num_chunks {
            if raw_pool.len() < config.chunk_size {
                let start = rng.gen_range(0..contig.len() - 2000);
                let seq = contig.slice(start, start + 2000);
                let sig = simulate_signal(&seq, &pore, &SignalSimConfig::default(), rng.gen());
                raw_pool.extend(sig.raw);
                continue;
            }
            chunks.push(raw_pool.drain(..config.chunk_size).collect());
        }
        NnBaseSubstrate { model, chunks }
    }

    /// Runs the SIMT model of this network's layers (Tables IV–V).
    pub fn gpu_report(&self) -> GpuKernelReport {
        let c = self.sub.model.config();
        let layers = bonito_like_layers(c.chunk_size, c.stride, c.channels, c.blocks, c.kernel);
        model_nn_base_gpu(
            &layers,
            &GemmGpuParams::default(),
            gb_simt::GpuConfig::default(),
        )
    }

    /// Multiply-accumulates per chunk.
    pub fn flops_per_chunk(&self) -> u64 {
        self.sub.model.flops_per_chunk()
    }
}

impl Kernel for NnBaseKernel {
    fn id(&self) -> KernelId {
        KernelId::NnBase
    }

    fn num_tasks(&self) -> usize {
        self.sub.chunks.len()
    }

    // PANIC-FREE: the pool only calls `run_task` with `i < num_tasks()`,
    // the documented `Kernel` contract.
    fn run_task(&self, i: usize) -> u64 {
        let posteriors = self
            .sub
            .model
            .forward_chunk_probed(&self.sub.chunks[i], &mut gb_uarch::probe::NullProbe);
        let decoded = gb_nn::ctc::greedy_decode(&posteriors);
        decoded
            .as_codes()
            .iter()
            .fold(decoded.len() as u64, |acc, &c| {
                acc.wrapping_mul(7).wrapping_add(u64::from(c))
            })
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = self
            .sub
            .model
            .forward_chunk_probed(&self.sub.chunks[i], probe);
    }

    fn task_work(&self, _i: usize) -> u64 {
        self.sub.model.flops_per_chunk()
    }
}

impl std::fmt::Debug for NnBaseKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NnBaseKernel")
            .field("chunks", &self.sub.chunks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = NnBaseKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 2).checksum);
    }

    #[test]
    fn gpu_report_is_regular() {
        let k = NnBaseKernel::prepare(DatasetSize::Tiny);
        let r = k.gpu_report();
        assert_eq!(r.branch_efficiency, 1.0);
        assert!(r.occupancy > 0.8);
    }
}
