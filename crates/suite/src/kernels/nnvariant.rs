//! The **nn-variant** kernel: neural variant calling (paper §III, from
//! Clair).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_core::record::AlignmentRecord;
use gb_core::region::{Region, RegionTask};
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::reads::{simulate_reads, ReadSimConfig};
use gb_nn::variant_caller::{VariantCaller, VariantCallerConfig};
use gb_pileup::feature::{clair_tensor, ClairTensor};
use gb_pileup::pileup::count_pileup;
use gb_uarch::cache::CacheProbe;
use std::sync::Arc;

/// Deterministic build product of the nn-variant prepare phase: the
/// initialized network weights and the candidate tensors.
pub struct NnVariantSubstrate {
    model: VariantCaller,
    tensors: Vec<ClairTensor>,
}

impl gb_substrate::Codec for NnVariantSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.model, e);
        gb_substrate::Codec::encode(&self.tensors, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<NnVariantSubstrate> {
        Some(NnVariantSubstrate {
            model: gb_substrate::Codec::decode(d)?,
            tensors: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared nn-variant workload: Clair tensors for candidate positions.
pub struct NnVariantKernel {
    sub: Arc<NnVariantSubstrate>,
}

impl NnVariantKernel {
    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare(size: DatasetSize) -> NnVariantKernel {
        NnVariantKernel::instantiate(Arc::new(NnVariantKernel::build_substrate(size)))
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. Cheap: no data is copied.
    pub fn instantiate(sub: Arc<NnVariantSubstrate>) -> NnVariantKernel {
        NnVariantKernel { sub }
    }

    /// Builds the full pre-processing chain: simulate long-read
    /// alignments, pileup-count them, and cut candidate tensors at
    /// regularly spaced reference positions (the paper's "first 10,000 /
    /// 500,000 reference positions" datasets).
    pub fn build_substrate(size: DatasetSize) -> NnVariantSubstrate {
        let num_candidates = match size {
            DatasetSize::Tiny => 5,
            DatasetSize::Small => 150,
            DatasetSize::Large => 1_500,
        };
        let genome_len = 100_000;
        let genome = Genome::generate(
            &GenomeConfig {
                length: genome_len,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let cfg = ReadSimConfig {
            num_reads: genome_len * 20 / 3000,
            ..ReadSimConfig::long(0)
        };
        let alignments: Vec<AlignmentRecord> =
            simulate_reads(&genome, &cfg, seeds::LONG_READS ^ 0xC1A1)
                .iter()
                .map(|r| r.to_alignment())
                .collect();
        let contig = genome.contig(0).clone();
        let task = RegionTask {
            region: Region::new(0, 0, genome_len),
            ref_seq: contig.clone(),
            reads: alignments,
        };
        let pile = count_pileup(&task);
        let step = (genome_len - 200) / num_candidates;
        let tensors = (0..num_candidates)
            .map(|i| clair_tensor(&pile, &contig, 100 + i * step))
            .collect();
        let model = VariantCaller::new(&VariantCallerConfig::default(), seeds::WEIGHTS ^ 0xC1);
        NnVariantSubstrate { model, tensors }
    }

    /// Multiply-accumulates per call.
    pub fn flops_per_call(&self) -> u64 {
        self.sub.model.flops_per_call()
    }
}

impl Kernel for NnVariantKernel {
    fn id(&self) -> KernelId {
        KernelId::NnVariant
    }

    fn num_tasks(&self) -> usize {
        self.sub.tensors.len()
    }

    // PANIC-FREE: the pool only calls `run_task` with `i < num_tasks()`,
    // the documented `Kernel` contract.
    fn run_task(&self, i: usize) -> u64 {
        let call = self.sub.model.call(&self.sub.tensors[i]);
        call.zygosity_probs
            .iter()
            .chain(&call.type_probs)
            .chain(&call.alt_probs)
            .fold(0u64, |acc, &p| {
                acc.wrapping_mul(31).wrapping_add((p * 1e6) as u64)
            })
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = self.sub.model.call_probed(&self.sub.tensors[i], probe);
    }

    fn task_work(&self, _i: usize) -> u64 {
        self.sub.model.flops_per_call()
    }
}

impl std::fmt::Debug for NnVariantKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NnVariantKernel")
            .field("candidates", &self.sub.tensors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = NnVariantKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 2).checksum);
        assert_eq!(k.num_tasks(), 5);
    }

    #[test]
    fn tensors_are_populated() {
        let k = NnVariantKernel::prepare(DatasetSize::Tiny);
        let nonzero = k
            .sub
            .tensors
            .iter()
            .filter(|t| t.data.iter().any(|&v| v != 0.0))
            .count();
        assert!(nonzero >= 4, "only {nonzero} populated tensors");
    }
}
