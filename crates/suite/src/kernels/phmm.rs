//! The **phmm** kernel: pair-HMM read-haplotype likelihoods (paper §III,
//! from GATK HaplotypeCaller).
//!
//! Two execution engines ([`DpEngine`]): the scalar mode runs the
//! row-wise f32/f64 forward kernel per pair; the SIMD mode runs the
//! anti-diagonal wavefront f32 engine (`gb_dp::phmm_wavefront`) and
//! orders regions by descending estimated work (longest-processing-time
//! first for the dynamic pool). Per-pair likelihoods are bit-identical,
//! so both engines produce the same run checksum.

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_assembly::dbg::{assemble_region, DbgParams};
use gb_core::record::ReadRecord;
use gb_core::seq::DnaSeq;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::reads::ReadSimConfig;
use gb_datagen::regions::{build_region_tasks, RegionSimConfig};
use gb_dp::phmm::{forward_likelihood, forward_likelihood_probed, HmmParams};
use gb_dp::phmm_wavefront::{wavefront_likelihood, wavefront_likelihood_probed};
use gb_dp::DpEngine;
use gb_uarch::cache::CacheProbe;
use std::sync::Arc;

/// One phmm task: a genome region's reads evaluated against its candidate
/// haplotypes (`|R| x |H|` pairwise likelihoods, paper §III).
pub struct PhmmTask {
    reads: Vec<ReadRecord>,
    haplotypes: Vec<DnaSeq>,
}

impl gb_substrate::Codec for PhmmTask {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.reads, e);
        gb_substrate::Codec::encode(&self.haplotypes, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<PhmmTask> {
        Some(PhmmTask {
            reads: gb_substrate::Codec::decode(d)?,
            haplotypes: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Deterministic build product of the phmm prepare phase: the assembled
/// region tasks in generation order. Engine-independent — the SIMD
/// engine's LPT ordering is a per-run permutation, applied at
/// instantiation.
pub struct PhmmSubstrate {
    tasks: Vec<PhmmTask>,
}

impl gb_substrate::Codec for PhmmSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.tasks, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<PhmmSubstrate> {
        Some(PhmmSubstrate {
            tasks: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared phmm workload.
pub struct PhmmKernel {
    sub: Arc<PhmmSubstrate>,
    /// Task issue order: pool task `i` runs substrate task `order[i]`
    /// (identity for the scalar engine, LPT for SIMD).
    order: Vec<usize>,
    params: HmmParams,
    engine: DpEngine,
}

impl PhmmKernel {
    /// Paper-faithful preparation: scalar (row-wise) engine.
    pub fn prepare(size: DatasetSize) -> PhmmKernel {
        PhmmKernel::prepare_with(size, DpEngine::Scalar)
    }

    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare_with(size: DatasetSize, engine: DpEngine) -> PhmmKernel {
        PhmmKernel::instantiate(Arc::new(PhmmKernel::build_substrate(size)), engine)
    }

    /// The region task the pool's task `i` executes.
    // PANIC-FREE: `order` is a permutation of `0..tasks.len()` and the
    // pool keeps `i < num_tasks()`.
    fn task(&self, i: usize) -> &PhmmTask {
        &self.sub.tasks[self.order[i]]
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. The SIMD engine derives its
    /// longest-processing-time-first issue order here: phmm has the
    /// paper's worst per-region imbalance (Fig. 4), so issuing the
    /// heaviest regions first stops one of them landing last and
    /// stretching the pool's tail. Checksums are order-insensitive, so
    /// the permutation cannot change results.
    // PANIC-FREE: the sort key indexes `sub.tasks` with members of
    // `0..tasks.len()`.
    pub fn instantiate(sub: Arc<PhmmSubstrate>, engine: DpEngine) -> PhmmKernel {
        let mut order: Vec<usize> = (0..sub.tasks.len()).collect();
        if engine == DpEngine::Simd {
            order.sort_by_key(|&i| {
                let t = &sub.tasks[i];
                let reads: u64 = t.reads.iter().map(|r| r.len() as u64).sum();
                let haps: u64 = t.haplotypes.iter().map(|h| h.len() as u64).sum();
                std::cmp::Reverse(reads.wrapping_mul(haps))
            });
        }
        PhmmKernel {
            sub,
            order,
            params: HmmParams::default(),
            engine,
        }
    }

    /// Builds the realistic GATK front-to-back input: regions are
    /// simulated, re-assembled with the dbg kernel, and the resulting
    /// haplotypes paired with the region's reads.
    pub fn build_substrate(size: DatasetSize) -> PhmmSubstrate {
        let genome_len = match size {
            DatasetSize::Tiny => 4_000,
            DatasetSize::Small => 24_000,
            DatasetSize::Large => 240_000,
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: genome_len,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let cfg = RegionSimConfig {
            region_len: 300,
            coverage: 15.0,
            reads: ReadSimConfig {
                read_len: 100,
                ..ReadSimConfig::short(0)
            },
            ..RegionSimConfig::default()
        };
        let workload = build_region_tasks(&genome, &cfg, seeds::REGIONS ^ 0x9A);
        // GATK trims its haplotype set before the pairHMM; keep the best
        // few so per-region work stays |R| x |H| with small |H|.
        let dbg_params = DbgParams {
            max_haplotypes: 4,
            ..DbgParams::default()
        };
        let tasks: Vec<PhmmTask> = workload
            .tasks
            .into_iter()
            .filter(|t| !t.reads.is_empty())
            .map(|t| {
                let haplotypes = assemble_region(&t, &dbg_params).haplotypes;
                let reads = t.reads.into_iter().map(|a| a.read).collect();
                PhmmTask { reads, haplotypes }
            })
            .collect();
        PhmmSubstrate { tasks }
    }
}

impl Kernel for PhmmKernel {
    fn id(&self) -> KernelId {
        KernelId::Phmm
    }

    fn num_tasks(&self) -> usize {
        self.sub.tasks.len()
    }

    fn run_task(&self, i: usize) -> u64 {
        let t = self.task(i);
        let mut acc = 0u64;
        for read in &t.reads {
            for hap in &t.haplotypes {
                // Both engines produce bit-identical likelihoods (see
                // crates/dp/tests/dp_engines_diff.rs), so the checksum
                // contribution is engine-independent.
                let r = match self.engine {
                    DpEngine::Scalar => forward_likelihood(read, hap, &self.params),
                    DpEngine::Simd => wavefront_likelihood(read, hap, &self.params),
                };
                acc = acc.wrapping_add((r.log10_likelihood * -16.0) as u64);
            }
        }
        acc
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let t = self.task(i);
        for read in &t.reads {
            for hap in &t.haplotypes {
                match self.engine {
                    DpEngine::Scalar => {
                        let _ = forward_likelihood_probed(read, hap, &self.params, probe);
                    }
                    DpEngine::Simd => {
                        let _ = wavefront_likelihood_probed(read, hap, &self.params, probe);
                    }
                }
            }
        }
    }

    fn task_work(&self, i: usize) -> u64 {
        let t = self.task(i);
        t.reads
            .iter()
            .map(|r| r.len() as u64)
            .sum::<u64>()
            .wrapping_mul(t.haplotypes.iter().map(|h| h.len() as u64).sum::<u64>())
    }
}

impl std::fmt::Debug for PhmmKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhmmKernel")
            .field("regions", &self.sub.tasks.len())
            .field("engine", &self.engine.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial, work_distribution};

    #[test]
    fn deterministic_across_threads() {
        let k = PhmmKernel::prepare(DatasetSize::Tiny);
        assert!(k.num_tasks() > 10);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
    }

    #[test]
    fn region_work_varies_strongly() {
        // Paper Fig. 4: phmm shows the largest per-task imbalance.
        let k = PhmmKernel::prepare(DatasetSize::Tiny);
        let d = work_distribution(&k);
        // Data-derived invariants that hold for any RNG stream: region
        // work genuinely varies, so max exceeds both min and mean.
        assert!(d.max > d.min, "degenerate work distribution: {d:?}");
        assert!(d.imbalance > 1.0, "imbalance {}", d.imbalance);
        // The 2x bound is calibrated against the real rand streams; the
        // offline SplitMix64 stub draws different region sizes and only
        // reaches ~1.9x on the tiny tier.
        if !crate::test_support::rand_is_offline_stub() {
            assert!(d.imbalance > 2.0, "imbalance {}", d.imbalance);
        }
    }

    #[test]
    fn engines_agree_on_checksum() {
        // Per-pair likelihoods are bit-identical across engines and the
        // pool checksum is order-insensitive, so the wavefront engine's
        // LPT task reordering cannot change the result.
        let scalar = PhmmKernel::prepare_with(DatasetSize::Tiny, DpEngine::Scalar);
        let simd = PhmmKernel::prepare_with(DatasetSize::Tiny, DpEngine::Simd);
        assert_eq!(scalar.num_tasks(), simd.num_tasks());
        assert_eq!(
            run_serial(&scalar).checksum,
            run_parallel(&simd, 4).checksum
        );
    }

    #[test]
    fn simd_engine_issues_heaviest_region_first() {
        let simd = PhmmKernel::prepare_with(DatasetSize::Tiny, DpEngine::Simd);
        let works: Vec<u64> = (0..simd.num_tasks()).map(|i| simd.task_work(i)).collect();
        let max = works.iter().copied().max().unwrap();
        assert_eq!(
            works[0], max,
            "LPT order should lead with the max-work region"
        );
    }
}
