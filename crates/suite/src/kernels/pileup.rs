//! The **pileup** kernel: per-region base/indel counting (paper §III,
//! from Medaka).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_core::record::AlignmentRecord;
use gb_core::region::{Region, RegionTask};
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::reads::{simulate_reads, ReadSimConfig};
use gb_pileup::pileup::{count_pileup, count_pileup_probed};
use gb_uarch::cache::CacheProbe;

/// Region width per task (the paper's 100-kilobase Medaka windows,
/// scaled to the synthetic genome).
const REGION_LEN: usize = 100_000;

/// Prepared pileup workload: alignments bucketed into fixed windows.
pub struct PileupKernel {
    tasks: Vec<RegionTask>,
}

impl PileupKernel {
    /// Simulates ONT-like long-read alignments across the genome and
    /// tiles them into 100-kb counting regions.
    pub fn prepare(size: DatasetSize) -> PileupKernel {
        let genome_len = match size {
            DatasetSize::Tiny => 120_000,
            DatasetSize::Small => 1_200_000,
            DatasetSize::Large => 12_000_000,
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: genome_len,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let coverage = 25usize;
        let mean_len = 3000usize;
        let num_reads = genome_len * coverage / mean_len;
        let cfg = ReadSimConfig {
            num_reads,
            ..ReadSimConfig::long(0)
        };
        let alignments: Vec<AlignmentRecord> = simulate_reads(&genome, &cfg, seeds::LONG_READS)
            .iter()
            .map(|r| r.to_alignment())
            .collect();
        let contig = genome.contig(0);
        let tasks = Region::tile(0, genome_len, REGION_LEN)
            .into_iter()
            .map(|region| {
                let reads = alignments
                    .iter()
                    .filter(|a| a.overlaps(region.start, region.end))
                    .cloned()
                    .collect();
                RegionTask {
                    region,
                    ref_seq: contig.slice(region.start, region.end),
                    reads,
                }
            })
            .collect();
        PileupKernel { tasks }
    }

    /// The region tasks (shared with the nn-variant front-end).
    pub fn tasks(&self) -> &[RegionTask] {
        &self.tasks
    }
}

impl Kernel for PileupKernel {
    fn id(&self) -> KernelId {
        KernelId::Pileup
    }

    fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn run_task(&self, i: usize) -> u64 {
        let p = count_pileup(&self.tasks[i]);
        p.counts.iter().step_by(97).fold(p.ops_walked, |acc, c| {
            acc.wrapping_mul(31).wrapping_add(u64::from(c.depth()))
        })
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = count_pileup_probed(&self.tasks[i], probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        count_pileup(&self.tasks[i]).ops_walked
    }
}

impl std::fmt::Debug for PileupKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PileupKernel")
            .field("regions", &self.tasks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = PileupKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
        assert_eq!(k.num_tasks(), 2);
    }

    #[test]
    fn coverage_lands_in_regions() {
        let k = PileupKernel::prepare(DatasetSize::Tiny);
        assert!(k.task_work(0) > 100_000, "work {}", k.task_work(0));
    }
}
