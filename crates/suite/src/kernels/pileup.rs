//! The **pileup** kernel: per-region base/indel counting (paper §III,
//! from Medaka).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_core::record::AlignmentRecord;
use gb_core::region::{Region, RegionTask};
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::reads::{simulate_reads, ReadSimConfig};
use gb_pileup::pileup::{count_pileup, count_pileup_probed};
use gb_uarch::cache::CacheProbe;
use std::sync::Arc;

/// Region width per task (the paper's 100-kilobase Medaka windows,
/// scaled to the synthetic genome).
const REGION_LEN: usize = 100_000;

/// Deterministic build product of the pileup prepare phase: the
/// alignments bucketed into 100-kb counting regions.
pub struct PileupSubstrate {
    tasks: Vec<RegionTask>,
}

impl gb_substrate::Codec for PileupSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.tasks, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<PileupSubstrate> {
        Some(PileupSubstrate {
            tasks: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared pileup workload: alignments bucketed into fixed windows.
pub struct PileupKernel {
    sub: Arc<PileupSubstrate>,
}

impl PileupKernel {
    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare(size: DatasetSize) -> PileupKernel {
        PileupKernel::instantiate(Arc::new(PileupKernel::build_substrate(size)))
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. Cheap: no data is copied.
    pub fn instantiate(sub: Arc<PileupSubstrate>) -> PileupKernel {
        PileupKernel { sub }
    }

    /// Simulates ONT-like long-read alignments across the genome and
    /// tiles them into 100-kb counting regions.
    pub fn build_substrate(size: DatasetSize) -> PileupSubstrate {
        let genome_len = match size {
            DatasetSize::Tiny => 120_000,
            DatasetSize::Small => 1_200_000,
            DatasetSize::Large => 12_000_000,
        };
        let genome = Genome::generate(
            &GenomeConfig {
                length: genome_len,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let coverage = 25usize;
        let mean_len = 3000usize;
        let num_reads = genome_len * coverage / mean_len;
        let cfg = ReadSimConfig {
            num_reads,
            ..ReadSimConfig::long(0)
        };
        let alignments: Vec<AlignmentRecord> = simulate_reads(&genome, &cfg, seeds::LONG_READS)
            .iter()
            .map(|r| r.to_alignment())
            .collect();
        let contig = genome.contig(0);
        let tasks = Region::tile(0, genome_len, REGION_LEN)
            .into_iter()
            .map(|region| {
                let reads = alignments
                    .iter()
                    .filter(|a| a.overlaps(region.start, region.end))
                    .cloned()
                    .collect();
                RegionTask {
                    region,
                    ref_seq: contig.slice(region.start, region.end),
                    reads,
                }
            })
            .collect();
        PileupSubstrate { tasks }
    }

    /// The region tasks (shared with the nn-variant front-end).
    pub fn tasks(&self) -> &[RegionTask] {
        &self.sub.tasks
    }
}

impl Kernel for PileupKernel {
    fn id(&self) -> KernelId {
        KernelId::Pileup
    }

    fn num_tasks(&self) -> usize {
        self.sub.tasks.len()
    }

    // PANIC-FREE: the pool only calls `run_task` with `i < num_tasks()`,
    // the documented `Kernel` contract.
    fn run_task(&self, i: usize) -> u64 {
        let p = count_pileup(&self.sub.tasks[i]);
        p.counts.iter().step_by(97).fold(p.ops_walked, |acc, c| {
            acc.wrapping_mul(31).wrapping_add(u64::from(c.depth()))
        })
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = count_pileup_probed(&self.sub.tasks[i], probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        count_pileup(&self.sub.tasks[i]).ops_walked
    }
}

impl std::fmt::Debug for PileupKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PileupKernel")
            .field("regions", &self.sub.tasks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = PileupKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
        assert_eq!(k.num_tasks(), 2);
    }

    #[test]
    fn coverage_lands_in_regions() {
        let k = PileupKernel::prepare(DatasetSize::Tiny);
        assert!(k.task_work(0) > 100_000, "work {}", k.task_work(0));
    }
}
