//! The **spoa** kernel: partial-order-alignment consensus windows (paper
//! §III, from Racon).
//!
//! Two execution engines ([`DpEngine`]): the paper-faithful scalar mode
//! scans each cell's graph predecessors inline in i32; the SIMD mode
//! runs the i16 row-sweep engine (`gb_poa::align_simd`) — full-row
//! predecessor passes on the `gb_dp::lockstep` precision ladder, with
//! overflow retiring the alignment to the exact i32 rerun — with
//! bit-identical scores, paths and graphs, so the two engines produce
//! the same run checksum.

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_core::seq::DnaSeq;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::reads::{simulate_reads, ErrorProfile, ReadSimConfig};
use gb_dp::lockstep::BatchReport;
use gb_dp::DpEngine;
use gb_poa::align::PoaParams;
use gb_poa::consensus::{window_consensus_engine, window_consensus_engine_probed};
use gb_uarch::cache::CacheProbe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Deterministic build product of the spoa prepare phase: the consensus
/// windows (backbone first, then the noisy reads). Engine-independent —
/// spoa vectorizes *within* each alignment, so both engines consume the
/// same window set.
pub struct SpoaSubstrate {
    windows: Vec<Vec<DnaSeq>>,
}

impl gb_substrate::Codec for SpoaSubstrate {
    fn encode(&self, e: &mut gb_substrate::Encoder) {
        gb_substrate::Codec::encode(&self.windows, e);
    }

    fn decode(d: &mut gb_substrate::Decoder) -> Option<SpoaSubstrate> {
        Some(SpoaSubstrate {
            windows: gb_substrate::Codec::decode(d)?,
        })
    }
}

/// Prepared spoa workload: one consensus window per task (backbone +
/// noisy long reads).
pub struct SpoaKernel {
    sub: Arc<SpoaSubstrate>,
    params: PoaParams,
    engine: DpEngine,
}

impl SpoaKernel {
    /// Paper-faithful preparation: scalar engine.
    pub fn prepare(size: DatasetSize) -> SpoaKernel {
        SpoaKernel::prepare_with(size, DpEngine::Scalar)
    }

    /// Builds the substrate and instantiates it (cold prepare).
    pub fn prepare_with(size: DatasetSize, engine: DpEngine) -> SpoaKernel {
        SpoaKernel::instantiate(Arc::new(SpoaKernel::build_substrate(size)), engine)
    }

    /// Wraps a (possibly cached, possibly shared) substrate into a
    /// runnable kernel. Cheap: no data is copied.
    pub fn instantiate(sub: Arc<SpoaSubstrate>, engine: DpEngine) -> SpoaKernel {
        SpoaKernel {
            sub,
            params: PoaParams::default(),
            engine,
        }
    }

    /// Builds Racon-like windows: a 200-base backbone and ONT-noise reads
    /// covering it, with depth varying per window (the imbalance source).
    /// The window set is identical for both engines; spoa vectorizes
    /// *within* each alignment (read-dimension row sweeps), so the task
    /// shape is one window per task on either engine.
    pub fn build_substrate(size: DatasetSize) -> SpoaSubstrate {
        let num_windows = match size {
            DatasetSize::Tiny => 6,
            DatasetSize::Small => 120,
            DatasetSize::Large => 1_200,
        };
        let window_len = 200usize;
        let genome = Genome::generate(
            &GenomeConfig {
                length: window_len * num_windows,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let mut rng = StdRng::seed_from_u64(seeds::LONG_READS ^ 0x50A);
        let windows = (0..num_windows)
            .map(|w| {
                let backbone = genome.contig(0).slice(w * window_len, (w + 1) * window_len);
                let depth = rng.gen_range(8..=24usize);
                let g = Genome::from_contigs(vec![backbone.clone()]);
                let cfg = ReadSimConfig {
                    num_reads: depth,
                    read_len: window_len,
                    length_jitter: 0.0,
                    errors: ErrorProfile::nanopore(),
                    revcomp_prob: 0.0,
                };
                let mut reads = vec![backbone];
                reads.extend(
                    simulate_reads(&g, &cfg, rng.gen())
                        .into_iter()
                        .map(|r| r.record.seq),
                );
                reads
            })
            .collect();
        SpoaSubstrate { windows }
    }

    /// Replays every window on this kernel's engine and folds the
    /// per-alignment slot accounting (used by [`Kernel::export_gauges`]
    /// and the experiment reports).
    pub fn batch_report(&self) -> BatchReport {
        let mut total = BatchReport::default();
        for w in &self.sub.windows {
            let (_, _, report) = window_consensus_engine(w, &self.params, self.engine);
            total.merge(&report);
        }
        total
    }
}

impl Kernel for SpoaKernel {
    fn id(&self) -> KernelId {
        KernelId::Spoa
    }

    fn num_tasks(&self) -> usize {
        self.sub.windows.len()
    }

    // PANIC-FREE: the pool only calls `run_task` with `i < num_tasks()`,
    // the documented `Kernel` contract.
    fn run_task(&self, i: usize) -> u64 {
        let (consensus, stats, _) =
            window_consensus_engine(&self.sub.windows[i], &self.params, self.engine);
        consensus.as_codes().iter().fold(stats.cells, |acc, &c| {
            acc.wrapping_mul(5).wrapping_add(u64::from(c))
        })
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ =
            window_consensus_engine_probed(&self.sub.windows[i], &self.params, self.engine, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        window_consensus_engine(&self.sub.windows[i], &self.params, self.engine)
            .1
            .cells
    }

    fn export_gauges(&self) -> Vec<(String, f64)> {
        if self.engine != DpEngine::Simd {
            return Vec::new();
        }
        // Slot efficiency of the row-sweep engine: vector slots are rows
        // padded to whole lanes, so the dead-slot fraction is the
        // read-length padding waste; retired lanes count alignments the
        // precision ladder sent back to the exact i32 engine.
        let report = self.batch_report();
        vec![
            (
                "spoa.dead_slot_fraction".to_string(),
                report.dead_slot_fraction(),
            ),
            (
                "spoa.simd_retired_lanes".to_string(),
                report.retired_lanes as f64,
            ),
        ]
    }
}

impl std::fmt::Debug for SpoaKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpoaKernel")
            .field("windows", &self.sub.windows.len())
            .field("engine", &self.engine.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = SpoaKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
    }

    #[test]
    fn consensus_recovers_backbone_closely() {
        let k = SpoaKernel::prepare(DatasetSize::Tiny);
        let (consensus, _, _) = window_consensus_engine(&k.sub.windows[0], &k.params, k.engine);
        let backbone = &k.sub.windows[0][0];
        let len_diff = (consensus.len() as i64 - backbone.len() as i64).abs();
        assert!(len_diff < 20, "consensus length diff {len_diff}");
    }

    #[test]
    fn engines_agree_on_checksum() {
        let scalar = SpoaKernel::prepare_with(DatasetSize::Tiny, DpEngine::Scalar);
        let simd = SpoaKernel::prepare_with(DatasetSize::Tiny, DpEngine::Simd);
        assert_eq!(scalar.num_tasks(), simd.num_tasks());
        assert_eq!(
            run_serial(&scalar).checksum,
            run_parallel(&simd, 4).checksum
        );
    }

    #[test]
    fn engines_agree_on_total_work() {
        let scalar = SpoaKernel::prepare_with(DatasetSize::Tiny, DpEngine::Scalar);
        let simd = SpoaKernel::prepare_with(DatasetSize::Tiny, DpEngine::Simd);
        assert_eq!(
            crate::kernels::total_work(&scalar),
            crate::kernels::total_work(&simd)
        );
    }

    #[test]
    fn simd_gauges_report_slot_accounting() {
        let simd = SpoaKernel::prepare_with(DatasetSize::Tiny, DpEngine::Simd);
        let gauges = simd.export_gauges();
        let get = |name: &str| {
            gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        let dead = get("spoa.dead_slot_fraction");
        assert!((0.0..1.0).contains(&dead), "dead slots {dead}");
        // Default params fit the i16 ladder and window scores stay far
        // below the watch, so nothing retires on this workload.
        assert_eq!(get("spoa.simd_retired_lanes"), 0.0);
        // Scalar engine exports nothing.
        assert!(SpoaKernel::prepare(DatasetSize::Tiny)
            .export_gauges()
            .is_empty());
    }
}
