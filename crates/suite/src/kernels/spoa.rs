//! The **spoa** kernel: partial-order-alignment consensus windows (paper
//! §III, from Racon).

use super::{Kernel, KernelId};
use crate::dataset::{seeds, DatasetSize};
use gb_core::seq::DnaSeq;
use gb_datagen::genome::{Genome, GenomeConfig};
use gb_datagen::reads::{simulate_reads, ErrorProfile, ReadSimConfig};
use gb_poa::align::PoaParams;
use gb_poa::consensus::{window_consensus, window_consensus_probed};
use gb_uarch::cache::CacheProbe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Prepared spoa workload: one consensus window per task (backbone +
/// noisy long reads).
pub struct SpoaKernel {
    windows: Vec<Vec<DnaSeq>>,
    params: PoaParams,
}

impl SpoaKernel {
    /// Builds Racon-like windows: a 200-base backbone and ONT-noise reads
    /// covering it, with depth varying per window (the imbalance source).
    pub fn prepare(size: DatasetSize) -> SpoaKernel {
        let num_windows = match size {
            DatasetSize::Tiny => 6,
            DatasetSize::Small => 120,
            DatasetSize::Large => 1_200,
        };
        let window_len = 200usize;
        let genome = Genome::generate(
            &GenomeConfig {
                length: window_len * num_windows,
                ..Default::default()
            },
            seeds::GENOME,
        );
        let mut rng = StdRng::seed_from_u64(seeds::LONG_READS ^ 0x50A);
        let windows = (0..num_windows)
            .map(|w| {
                let backbone = genome.contig(0).slice(w * window_len, (w + 1) * window_len);
                let depth = rng.gen_range(8..=24usize);
                let g = Genome::from_contigs(vec![backbone.clone()]);
                let cfg = ReadSimConfig {
                    num_reads: depth,
                    read_len: window_len,
                    length_jitter: 0.0,
                    errors: ErrorProfile::nanopore(),
                    revcomp_prob: 0.0,
                };
                let mut reads = vec![backbone];
                reads.extend(
                    simulate_reads(&g, &cfg, rng.gen())
                        .into_iter()
                        .map(|r| r.record.seq),
                );
                reads
            })
            .collect();
        SpoaKernel {
            windows,
            params: PoaParams::default(),
        }
    }
}

impl Kernel for SpoaKernel {
    fn id(&self) -> KernelId {
        KernelId::Spoa
    }

    fn num_tasks(&self) -> usize {
        self.windows.len()
    }

    fn run_task(&self, i: usize) -> u64 {
        let (consensus, stats) = window_consensus(&self.windows[i], &self.params);
        consensus.as_codes().iter().fold(stats.cells, |acc, &c| {
            acc.wrapping_mul(5).wrapping_add(u64::from(c))
        })
    }

    fn characterize_task(&self, i: usize, probe: &mut CacheProbe) {
        let _ = window_consensus_probed(&self.windows[i], &self.params, probe);
    }

    fn task_work(&self, i: usize) -> u64 {
        window_consensus(&self.windows[i], &self.params).1.cells
    }
}

impl std::fmt::Debug for SpoaKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpoaKernel")
            .field("windows", &self.windows.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{run_parallel, run_serial};

    #[test]
    fn deterministic_across_threads() {
        let k = SpoaKernel::prepare(DatasetSize::Tiny);
        assert_eq!(run_serial(&k).checksum, run_parallel(&k, 4).checksum);
    }

    #[test]
    fn consensus_recovers_backbone_closely() {
        let k = SpoaKernel::prepare(DatasetSize::Tiny);
        let (consensus, _) = window_consensus(&k.windows[0], &k.params);
        let backbone = &k.windows[0][0];
        let len_diff = (consensus.len() as i64 - backbone.len() as i64).abs();
        assert!(len_diff < 20, "consensus length diff {len_diff}");
    }
}
