//! # gb-suite
//!
//! The GenomicsBench-rs suite façade: the twelve kernels behind a common
//! [`kernels::Kernel`] interface, dataset presets, the dynamic-scheduling
//! pool, and the report generators that regenerate every table and figure
//! of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod experiments;
pub mod export;
pub mod kernels;
pub mod paper;
pub mod pipelines;
pub mod pool;
pub mod reports;
pub mod scaling;

pub use dataset::DatasetSize;
pub use kernels::{characterize, prepare, run_parallel, run_serial, Kernel, KernelId};

/// Test-only helpers shared across the crate's unit tests.
#[cfg(test)]
pub(crate) mod test_support {
    /// Whether the `rand` crate backing this build is the offline
    /// SplitMix64 stub rather than the real crates.io release. The two
    /// produce different numeric streams, so tests whose thresholds are
    /// calibrated against the real streams (heavy-tailed region sizes,
    /// exact pipeline reconstruction) assert their strict form only on
    /// the real crate and a data-derived weaker form on the stub.
    ///
    /// Detection is behavioural: the stub's `StdRng` is SplitMix64, so
    /// `seed_from_u64(0)` yields the mix of twice the golden-ratio
    /// increment (once from seeding, once from the first step), which
    /// the real ChaCha-based `StdRng` cannot reproduce.
    pub(crate) fn rand_is_offline_stub() -> bool {
        use rand::{rngs::StdRng, RngCore, SeedableRng};
        let mut z = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(2);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        StdRng::seed_from_u64(0).next_u64() == z
    }
}
