//! # gb-suite
//!
//! The GenomicsBench-rs suite façade: the twelve kernels behind a common
//! [`kernels::Kernel`] interface, dataset presets, the dynamic-scheduling
//! pool, and the report generators that regenerate every table and figure
//! of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod experiments;
pub mod export;
pub mod kernels;
pub mod paper;
pub mod pipelines;
pub mod pool;
pub mod reports;
pub mod scaling;

pub use dataset::DatasetSize;
pub use kernels::{characterize, prepare, run_parallel, run_serial, Kernel, KernelId};
