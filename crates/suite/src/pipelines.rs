//! The paper's three end-to-end pipelines (Fig. 1) as library functions.
//!
//! The kernels exist to serve these pipelines; wiring them together here
//! (a) proves the kernel APIs compose, and (b) gives examples/tests one
//! canonical implementation of each flow:
//!
//! - [`reference_guided`]: map reads (fmi + bsw), re-assemble regions
//!   (dbg), score haplotypes (phmm), call SNVs — Fig. 1a,
//! - [`denovo_polish`]: count k-mers, assemble unitigs, polish windows
//!   with POA consensus — Fig. 1b,
//! - [`metagenomic_abundance`]: classify reads against a pan-genome with
//!   SMEMs and estimate composition — Fig. 1c.

use gb_assembly::dbg::{assemble_region, DbgParams};
use gb_assembly::unitigs::{assemble_unitigs, Assembly, UnitigParams};
use gb_core::cigar::{Cigar, CigarOp};
use gb_core::record::{AlignmentRecord, ReadRecord, Strand};
use gb_core::region::{Region, RegionTask};
use gb_core::seq::DnaSeq;
use gb_dp::bsw::{banded_sw, SwParams};
use gb_dp::phmm::{forward_likelihood, HmmParams};
use gb_fmi::bidir::BiIndex;
use gb_fmi::smem::{collect_smems, SmemConfig};
use gb_obs::{NullRecorder, Recorder};
use gb_poa::align::PoaParams;
use gb_poa::consensus::window_consensus;

/// Runs `f` as a named pipeline stage: when `recorder` is enabled the
/// stage is timed and emitted as a span (category `"stage"`); when
/// disabled the closure runs with no timing overhead at all.
fn stage<T>(recorder: &dyn Recorder, name: &str, f: impl FnOnce() -> T) -> T {
    if !recorder.enabled() {
        return f();
    }
    let ts = recorder.now_ns();
    let start = std::time::Instant::now();
    let out = f();
    recorder.span(name, "stage", 0, ts, start.elapsed().as_nanos() as u64);
    out
}

/// An open pipeline-root span: covers the whole `*_traced` call so the
/// per-stage spans nest under one root frame (`rg;rg:map`-style) when
/// profile analytics folds the trace by interval containment. Inert (no
/// clock reads) when the recorder is disabled.
struct RootSpan<'a> {
    recorder: &'a dyn Recorder,
    name: &'static str,
    open: Option<(u64, std::time::Instant)>,
}

impl<'a> RootSpan<'a> {
    fn enter(recorder: &'a dyn Recorder, name: &'static str) -> Self {
        let open = recorder
            .enabled()
            .then(|| (recorder.now_ns(), std::time::Instant::now()));
        RootSpan {
            recorder,
            name,
            open,
        }
    }

    /// Emits the span; called at the pipeline's single return point (not
    /// a `Drop` impl, so an unwinding pipeline emits nothing).
    fn exit(self) {
        if let Some((ts, start)) = self.open {
            self.recorder
                .span(self.name, "stage", 0, ts, start.elapsed().as_nanos() as u64);
        }
    }
}

/// A called variant site from the reference-guided pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalledSnv {
    /// 0-based reference position.
    pub pos: usize,
    /// The called alternate base (2-bit code).
    pub alt: u8,
}

/// Output of [`reference_guided`].
#[derive(Debug, Clone, Default)]
pub struct ReferenceGuidedResult {
    /// Reads successfully mapped.
    pub mapped_reads: usize,
    /// SNVs called, sorted by position.
    pub snvs: Vec<CalledSnv>,
}

/// Maps `reads` (already strand-corrected, e.g. from
/// `SimulatedRead::to_alignment`) against `reference`, re-assembles
/// `region_len` windows and calls SNVs where an alternate haplotype beats
/// the reference by `min_log10_margin` under the pair-HMM.
pub fn reference_guided(
    reference: &DnaSeq,
    reads: &[ReadRecord],
    region_len: usize,
    min_log10_margin: f64,
) -> ReferenceGuidedResult {
    reference_guided_traced(
        reference,
        reads,
        region_len,
        min_log10_margin,
        &NullRecorder,
    )
}

/// [`reference_guided`] with stage spans (`rg:index`, `rg:map`,
/// `rg:call`) and mapped-read/SNV counters emitted on `recorder`.
pub fn reference_guided_traced(
    reference: &DnaSeq,
    reads: &[ReadRecord],
    region_len: usize,
    min_log10_margin: f64,
    recorder: &dyn Recorder,
) -> ReferenceGuidedResult {
    let root = RootSpan::enter(recorder, "rg");
    let index = stage(recorder, "rg:index", || BiIndex::build(reference));
    let smem_cfg = SmemConfig {
        min_seed_len: 19,
        min_intv: 1,
    };
    let sw = SwParams::default();

    // 1. Map: SMEM seed + banded-SW extension of the best seed.
    let mapped = stage(recorder, "rg:map", || {
        let mut mapped: Vec<AlignmentRecord> = Vec::new();
        for read in reads {
            let smems = collect_smems(&index, &read.seq, &smem_cfg);
            let Some(best) = smems.iter().max_by_key(|m| m.len()) else {
                continue;
            };
            let mut best_hit: Option<(i32, usize)> = None;
            for row in best.interval.k..best.interval.k + best.interval.s.min(4) {
                let hit = index.forward().locate(row) as usize;
                let start = hit.saturating_sub(best.start + 8);
                let target = reference.slice(start, start + read.len() + 16);
                let r = banded_sw(&read.seq, &target, &sw);
                if best_hit.is_none_or(|(s, _)| r.score > s) {
                    best_hit = Some((r.score, start + r.target_end.saturating_sub(r.query_end)));
                }
            }
            if let Some((_, pos)) = best_hit {
                let mut cigar = Cigar::new();
                cigar.push(read.len() as u32, CigarOp::Match);
                if let Ok(a) =
                    AlignmentRecord::new(read.clone(), 0, pos, cigar, 60, Strand::Forward)
                {
                    mapped.push(a);
                }
            }
        }
        mapped
    });
    recorder.counter("rg:mapped_reads", mapped.len() as u64);

    // 2+3. Per-window re-assembly and pair-HMM haplotype scoring.
    let hmm = HmmParams::default();
    let dbg_params = DbgParams {
        max_haplotypes: 4,
        ..DbgParams::default()
    };
    let snvs = stage(recorder, "rg:call", || {
        let mut snvs = Vec::new();
        for region in Region::tile(0, reference.len(), region_len) {
            let in_region: Vec<AlignmentRecord> = mapped
                .iter()
                .filter(|a| a.overlaps(region.start, region.end))
                .cloned()
                .collect();
            if in_region.is_empty() {
                continue;
            }
            let task = RegionTask {
                region,
                ref_seq: reference.slice(region.start, region.end),
                reads: in_region,
            };
            let asm = assemble_region(&task, &dbg_params);
            if asm.haplotypes.len() < 2 {
                continue;
            }
            let score = |hap: &DnaSeq| -> f64 {
                task.reads
                    .iter()
                    .map(|r| forward_likelihood(&r.read, hap, &hmm).log10_likelihood)
                    .sum()
            };
            let ref_score = score(&asm.haplotypes[0]);
            let (best_alt, alt_score) = asm.haplotypes[1..]
                .iter()
                .map(|h| (h, score(h)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("alternates exist");
            if alt_score > ref_score + min_log10_margin && best_alt.len() == task.ref_seq.len() {
                for (off, (&a, &b)) in task
                    .ref_seq
                    .as_codes()
                    .iter()
                    .zip(best_alt.as_codes())
                    .enumerate()
                {
                    if a != b {
                        snvs.push(CalledSnv {
                            pos: region.start + off,
                            alt: b,
                        });
                    }
                }
            }
        }
        snvs.sort_by_key(|s| s.pos);
        snvs.dedup();
        snvs
    });
    recorder.counter("rg:snvs", snvs.len() as u64);
    root.exit();
    ReferenceGuidedResult {
        mapped_reads: mapped.len(),
        snvs,
    }
}

/// Output of [`denovo_polish`].
#[derive(Debug, Clone)]
pub struct DenovoResult {
    /// The unitig assembly.
    pub assembly: Assembly,
    /// Polished contigs (same order as `assembly.contigs`).
    pub polished: Vec<DnaSeq>,
}

/// Assembles `reads` into unitigs and polishes each contig with a POA
/// consensus over the reads' matching windows (a simplified Racon pass:
/// reads are matched to contigs by containment of their first k-mer).
pub fn denovo_polish(reads: &[DnaSeq], params: &UnitigParams) -> DenovoResult {
    denovo_polish_traced(reads, params, &NullRecorder)
}

/// [`denovo_polish`] with stage spans (`dn:assemble`, `dn:polish`) and a
/// contig counter emitted on `recorder`.
pub fn denovo_polish_traced(
    reads: &[DnaSeq],
    params: &UnitigParams,
    recorder: &dyn Recorder,
) -> DenovoResult {
    let root = RootSpan::enter(recorder, "dn");
    let assembly = stage(recorder, "dn:assemble", || assemble_unitigs(reads, params));
    recorder.counter("dn:contigs", assembly.contigs.len() as u64);
    let poa = PoaParams::default();
    let polished = stage(recorder, "dn:polish", || {
        assembly
            .contigs
            .iter()
            .map(|contig| {
                // Window = whole contig (contigs here are window-sized); the
                // backbone plus any read fully contained in it.
                let contig_str = contig.to_string();
                let rc = contig.reverse_complement().to_string();
                let mut window = vec![contig.clone()];
                for r in reads {
                    let s = r.to_string();
                    if contig_str.contains(&s) {
                        window.push(r.clone());
                    } else if rc.contains(&s) {
                        window.push(r.reverse_complement());
                    }
                    if window.len() > 16 {
                        break;
                    }
                }
                window_consensus(&window, &poa).0
            })
            .collect()
    });
    root.exit();
    DenovoResult { assembly, polished }
}

/// Output of [`metagenomic_abundance`].
#[derive(Debug, Clone)]
pub struct AbundanceResult {
    /// Reads classified per species (index-aligned with the input
    /// genome list).
    pub counts: Vec<u64>,
    /// Estimated fractions (sums to 1 over classified reads).
    pub fractions: Vec<f64>,
    /// Reads with no SMEM above the seed threshold.
    pub unclassified: u64,
}

/// Classifies `reads` against the concatenated `species` genomes by the
/// location of each read's longest SMEM.
pub fn metagenomic_abundance(
    species: &[DnaSeq],
    reads: &[DnaSeq],
    min_seed_len: usize,
) -> AbundanceResult {
    metagenomic_abundance_traced(species, reads, min_seed_len, &NullRecorder)
}

/// [`metagenomic_abundance`] with stage spans (`mg:index`,
/// `mg:classify`) and classification counters emitted on `recorder`.
pub fn metagenomic_abundance_traced(
    species: &[DnaSeq],
    reads: &[DnaSeq],
    min_seed_len: usize,
    recorder: &dyn Recorder,
) -> AbundanceResult {
    let root = RootSpan::enter(recorder, "mg");
    let index = stage(recorder, "mg:index", || {
        let mut pan = Vec::new();
        for s in species {
            pan.extend_from_slice(s.as_codes());
        }
        BiIndex::build(&DnaSeq::from_codes_unchecked(pan))
    });
    let mut boundaries = vec![0usize];
    for s in species {
        boundaries.push(boundaries.last().expect("nonempty") + s.len());
    }
    let cfg = SmemConfig {
        min_seed_len,
        min_intv: 1,
    };
    let mut counts = vec![0u64; species.len()];
    let mut unclassified = 0u64;
    stage(recorder, "mg:classify", || {
        for read in reads {
            let smems = collect_smems(&index, read, &cfg);
            match smems.iter().max_by_key(|m| m.len()) {
                Some(best) => {
                    let pos = index.forward().locate(best.interval.k) as usize;
                    let sp = boundaries
                        .windows(2)
                        .position(|w| pos >= w[0] && pos < w[1])
                        .expect("position within pan-genome");
                    counts[sp] += 1;
                }
                None => unclassified += 1,
            }
        }
    });
    recorder.counter("mg:classified", counts.iter().sum());
    recorder.counter("mg:unclassified", unclassified);
    let total: u64 = counts.iter().sum();
    let fractions = counts
        .iter()
        .map(|&c| {
            if total == 0 {
                0.0
            } else {
                c as f64 / total as f64
            }
        })
        .collect();
    root.exit();
    AbundanceResult {
        counts,
        fractions,
        unclassified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_datagen::genome::{Genome, GenomeConfig};
    use gb_datagen::reads::{simulate_reads, ErrorProfile, ReadSimConfig};
    use gb_datagen::variants::{inject_variants, VariantConfig, VariantKind};

    #[test]
    fn reference_guided_finds_planted_snvs() {
        let genome = Genome::generate(
            &GenomeConfig {
                length: 8_000,
                ..Default::default()
            },
            51,
        );
        let reference = genome.contig(0).clone();
        let sample = inject_variants(
            &reference,
            &VariantConfig {
                snv_rate: 0.003,
                ins_rate: 0.0,
                del_rate: 0.0,
                het_fraction: 0.0,
                ..Default::default()
            },
            52,
        );
        let hap_genome = Genome::from_contigs(vec![sample.hap1.clone()]);
        let cfg = ReadSimConfig {
            num_reads: 8_000 * 25 / 151,
            ..ReadSimConfig::short(0)
        };
        let reads: Vec<ReadRecord> = simulate_reads(&hap_genome, &cfg, 53)
            .iter()
            .map(|r| r.to_alignment().read)
            .collect();
        let result = reference_guided(&reference, &reads, 400, 3.0);
        assert!(result.mapped_reads > reads.len() / 2);
        let truth: Vec<usize> = sample
            .truth
            .iter()
            .filter(|v| matches!(v.kind, VariantKind::Snv { .. }))
            .map(|v| v.pos)
            .collect();
        assert!(!truth.is_empty());
        let tp = result
            .snvs
            .iter()
            .filter(|s| truth.contains(&s.pos))
            .count();
        // Homozygous SNVs at 25x: expect decent recall and no junk calls.
        assert!(
            tp * 2 >= truth.len(),
            "recall too low: {tp}/{}",
            truth.len()
        );
        assert!(
            tp * 2 >= result.snvs.len(),
            "precision too low: {tp}/{}",
            result.snvs.len()
        );
    }

    #[test]
    fn denovo_polish_reconstructs_clean_genome() {
        let genome = Genome::generate(
            &GenomeConfig {
                length: 2_000,
                repeat_fraction: 0.0,
                ..Default::default()
            },
            61,
        );
        let truth = genome.contig(0).clone();
        let mut reads = Vec::new();
        let mut s = 0;
        while s + 200 <= truth.len() {
            reads.push(truth.slice(s, s + 200));
            reads.push(truth.slice(s, s + 200));
            s += 50;
        }
        reads.push(truth.slice(truth.len() - 200, truth.len()));
        reads.push(truth.slice(truth.len() - 200, truth.len()));
        let r = denovo_polish(&reads, &UnitigParams::default());
        assert_eq!(r.assembly.contigs.len(), 1);
        assert_eq!(r.polished.len(), 1);
        // Data-derived invariant that holds for any RNG stream: clean
        // double-coverage reads must re-assemble the generated genome
        // exactly, up to strand.
        let contig = &r.assembly.contigs[0];
        assert!(
            contig == &truth || contig.reverse_complement() == truth,
            "assembly did not reconstruct the generated genome \
(contig {} bp vs truth {} bp)",
            contig.len(),
            truth.len()
        );
        let p = &r.polished[0];
        assert!(!p.is_empty());
        if !crate::test_support::rand_is_offline_stub() {
            // The POA polish consensus is only exact on the real rand
            // streams the test was calibrated against; the offline stub
            // draws a lower-complexity genome whose ambiguous alignments
            // make the windowed consensus diverge from the backbone.
            assert!(p == &truth || p.reverse_complement() == truth);
        }
    }

    #[test]
    fn traced_pipeline_emits_stage_spans() {
        use gb_obs::TraceRecorder;
        let genome = Genome::generate(
            &GenomeConfig {
                length: 1_000,
                repeat_fraction: 0.0,
                ..Default::default()
            },
            61,
        );
        let truth = genome.contig(0).clone();
        let mut reads = Vec::new();
        let mut s = 0;
        while s + 200 <= truth.len() {
            reads.push(truth.slice(s, s + 200));
            s += 50;
        }
        let rec = TraceRecorder::new();
        let r = denovo_polish_traced(&reads, &UnitigParams::default(), &rec);
        assert_eq!(
            rec.counters().get("dn:contigs"),
            Some(&(r.assembly.contigs.len() as u64))
        );
        let trace = rec.into_trace();
        let names: Vec<&str> = trace.events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"dn:assemble"), "stages: {names:?}");
        assert!(names.contains(&"dn:polish"), "stages: {names:?}");
        // Stage spans nest inside the recorder's timeline in order.
        let assemble = trace
            .events
            .iter()
            .find(|e| e.name == "dn:assemble")
            .unwrap();
        let polish = trace.events.iter().find(|e| e.name == "dn:polish").unwrap();
        assert!(
            assemble.ts_ns + assemble.dur_ns <= polish.ts_ns,
            "stages overlap"
        );
    }

    #[test]
    fn untraced_equals_traced() {
        use gb_obs::TraceRecorder;
        let species: Vec<DnaSeq> = (0..2)
            .map(|i| {
                Genome::generate(
                    &GenomeConfig {
                        length: 2_000,
                        ..Default::default()
                    },
                    91 + i,
                )
                .contig(0)
                .clone()
            })
            .collect();
        let reads: Vec<DnaSeq> = (0..10)
            .map(|i| species[i % 2].slice(i * 37, i * 37 + 80))
            .collect();
        let plain = metagenomic_abundance(&species, &reads, 25);
        let rec = TraceRecorder::new();
        let traced = metagenomic_abundance_traced(&species, &reads, 25, &rec);
        assert_eq!(plain.counts, traced.counts);
        assert_eq!(plain.unclassified, traced.unclassified);
    }

    #[test]
    fn abundance_recovers_mixture() {
        let species: Vec<DnaSeq> = (0..3)
            .map(|i| {
                Genome::generate(
                    &GenomeConfig {
                        length: 6_000,
                        ..Default::default()
                    },
                    71 + i as u64,
                )
                .contig(0)
                .clone()
            })
            .collect();
        let mix = [0.5f64, 0.3, 0.2];
        let mut reads = Vec::new();
        for (i, s) in species.iter().enumerate() {
            let g = Genome::from_contigs(vec![s.clone()]);
            let cfg = ReadSimConfig {
                num_reads: (300.0 * mix[i]) as usize,
                errors: ErrorProfile::illumina(),
                ..ReadSimConfig::short(0)
            };
            reads.extend(
                simulate_reads(&g, &cfg, 80 + i as u64)
                    .into_iter()
                    .map(|r| r.to_alignment().read.seq),
            );
        }
        let r = metagenomic_abundance(&species, &reads, 25);
        assert_eq!(r.unclassified, 0);
        for (est, want) in r.fractions.iter().zip(mix) {
            assert!((est - want).abs() < 0.05, "estimated {est} vs true {want}");
        }
    }
}
