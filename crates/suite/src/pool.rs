//! Dynamic task scheduling — the suite's OpenMP-`schedule(dynamic)`
//! replacement.
//!
//! The paper parallelizes every kernel by distributing independent tasks
//! to CPU threads with OpenMP dynamic scheduling (§IV-A). This module
//! provides the same semantics: a shared atomic task cursor that idle
//! workers pull from, so imbalanced task lists (Fig. 4) still load-balance
//! well (Fig. 7).

use gb_obs::mem::{self, PoolMemStats, WorkerMemTally};
use gb_obs::pool::TaskCursor;
use gb_obs::{LogHistogram, Recorder, TaskStats, WorkerStats};
use std::time::{Duration, Instant};

/// Runs `work` over `0..num_tasks` on `threads` workers with dynamic
/// scheduling, collecting each task's `u64` result (summed into the
/// returned checksum) and the wall-clock elapsed time.
///
/// `work` must be safe to call concurrently for distinct task indices.
///
/// # Examples
///
/// ```
/// use gb_suite::pool::run_dynamic;
/// // The elapsed Duration can read as zero on coarse clocks, so only
/// // the checksum is asserted.
/// let (sum, _elapsed) = run_dynamic(100, 4, |i| i as u64);
/// assert_eq!(sum, 4950);
/// ```
pub fn run_dynamic<F>(num_tasks: usize, threads: usize, work: F) -> (u64, Duration)
where
    F: Fn(usize) -> u64 + Sync,
{
    let threads = threads.max(1);
    let start = Instant::now();
    if threads == 1 {
        let mut acc = 0u64;
        for i in 0..num_tasks {
            acc = acc.wrapping_add(work(i));
        }
        return (acc, start.elapsed());
    }
    // The claim protocol lives in gb-obs so the loom job can
    // model-check it (tests/loom_pool.rs): exactly-once claiming and
    // monotone shutdown across all bounded-preemption interleavings.
    let cursor = TaskCursor::new(num_tasks);
    let total = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let work = &work;
                scope.spawn(move |_| {
                    let mut acc = 0u64;
                    while let Some(i) = cursor.claim() {
                        acc = acc.wrapping_add(work(i));
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .fold(0u64, u64::wrapping_add)
    })
    .expect("crossbeam scope");
    (total, start.elapsed())
}

/// What each worker accumulates during an instrumented run; folded into
/// [`TaskStats`] after the join.
struct WorkerTally {
    acc: u64,
    hist: LogHistogram,
    busy_ns: u64,
    tasks: u64,
    mem: WorkerMemTally,
}

/// One worker's pull-loop, timing every task. Span emission is gated on
/// [`Recorder::enabled`], so with a [`gb_obs::NullRecorder`] the only
/// overhead over [`run_dynamic`] is the two `Instant` reads per task
/// that feed the latency histogram.
fn instrumented_worker<R: Recorder + ?Sized, F>(
    cursor: &TaskCursor,
    work: &F,
    recorder: &R,
    span_name: &str,
    track: u32,
) -> WorkerTally
where
    F: Fn(usize) -> u64 + Sync,
{
    let mut tally = WorkerTally {
        acc: 0,
        hist: LogHistogram::new(),
        busy_ns: 0,
        tasks: 0,
        mem: WorkerMemTally::default(),
    };
    while let Some(i) = cursor.claim() {
        // Per-task heap epoch: opened on this worker's own thread-local
        // allocation slot, so concurrent workers never see each other's
        // allocations. Compiled out entirely without `mem-profile`.
        let mspan = mem::enabled().then(mem::TaskSpan::enter);
        let span_ts = recorder.now_ns();
        let t = Instant::now();
        tally.acc = tally.acc.wrapping_add(work(i));
        let dur_ns = t.elapsed().as_nanos() as u64;
        if let Some(s) = mspan {
            tally.mem.add(s.exit());
        }
        tally.hist.record(dur_ns);
        tally.busy_ns += dur_ns;
        tally.tasks += 1;
        if recorder.enabled() {
            recorder.span(span_name, "task", track, span_ts, dur_ns);
        }
    }
    tally
}

/// [`run_dynamic`] plus instrumentation: per-task latencies go into a
/// log-bucketed histogram, each worker tracks busy/idle time, and (when
/// `recorder` is enabled) every task emits a span named `span_name` on
/// the worker's track.
///
/// Returns the checksum, the wall-clock time, and the aggregated
/// [`TaskStats`].
///
/// # Examples
///
/// ```
/// use gb_obs::NullRecorder;
/// use gb_suite::pool::run_dynamic_instrumented;
/// let (sum, _, stats) =
///     run_dynamic_instrumented(100, 2, |i| i as u64, &NullRecorder, "demo");
/// assert_eq!(sum, 4950);
/// assert_eq!(stats.count, 100);
/// assert_eq!(stats.workers.iter().map(|w| w.tasks).sum::<u64>(), 100);
/// ```
pub fn run_dynamic_instrumented<R, F>(
    num_tasks: usize,
    threads: usize,
    work: F,
    recorder: &R,
    span_name: &str,
) -> (u64, Duration, TaskStats)
where
    R: Recorder + ?Sized,
    F: Fn(usize) -> u64 + Sync,
{
    let threads = threads.max(1);
    // Snapshot the calling thread's allocation level before any tasks
    // run: in the serial case tasks execute on this thread, and the
    // cross-thread fold needs the caller's pre-pool baseline either way.
    let caller_net = if mem::enabled() {
        mem::current_thread_net()
    } else {
        0
    };
    let start = Instant::now();
    let cursor = TaskCursor::new(num_tasks);
    let tallies: Vec<WorkerTally> = if threads == 1 {
        vec![instrumented_worker(&cursor, &work, recorder, span_name, 0)]
    } else {
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let cursor = &cursor;
                    let work = &work;
                    scope.spawn(move |_| {
                        instrumented_worker(cursor, work, recorder, span_name, t as u32)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("crossbeam scope")
    };
    let elapsed = start.elapsed();
    let wall_ns = elapsed.as_nanos() as u64;
    let mut hist = LogHistogram::new();
    let mut workers = Vec::with_capacity(tallies.len());
    let mut checksum = 0u64;
    for (idx, t) in tallies.iter().enumerate() {
        checksum = checksum.wrapping_add(t.acc);
        hist.merge(&t.hist);
        workers.push(WorkerStats {
            worker: idx,
            tasks: t.tasks,
            busy_ns: t.busy_ns,
            idle_ns: wall_ns.saturating_sub(t.busy_ns),
        });
    }
    if recorder.enabled() {
        recorder.counter("tasks", hist.count());
    }
    let mut stats = TaskStats::from_parts(&hist, workers, wall_ns);
    stats.memory = mem::enabled()
        .then(|| PoolMemStats::fold(caller_net, threads == 1, tallies.iter().map(|t| &t.mem)));
    (checksum, elapsed, stats)
}

/// Times a closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: usize| (i as u64).wrapping_mul(2654435761);
        let (serial, _) = run_dynamic(1000, 1, work);
        for threads in [2, 4, 8] {
            let (par, _) = run_dynamic(1000, threads, work);
            assert_eq!(par, serial, "threads {threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let (_, _) = run_dynamic(500, 4, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
            0
        });
        assert_eq!(counter.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let (sum, _) = run_dynamic(0, 4, |_| 1);
        assert_eq!(sum, 0);
    }

    #[test]
    fn imbalanced_tasks_load_balance() {
        // One huge task plus many tiny ones: dynamic scheduling should
        // keep the other workers busy, beating a 2x slowdown bound easily.
        let work = |i: usize| {
            let n = if i == 0 { 3_000_000u64 } else { 30_000 };
            let mut acc = 0u64;
            for j in 0..n {
                // black_box defeats closed-form loop folding.
                acc = acc.wrapping_add(std::hint::black_box(j).wrapping_mul(0x9E3779B97F4A7C15));
            }
            acc
        };
        let (a, t1) = run_dynamic(100, 1, work);
        let (b, t4) = run_dynamic(100, 4, work);
        assert_eq!(a, b);
        // The timing bound only holds when the host can actually run
        // workers concurrently; on a single hardware thread the 4-worker
        // run adds scheduling overhead and can legitimately exceed 2x.
        // The checksum equality above is the correctness assertion.
        let can_parallelize = std::thread::available_parallelism().is_ok_and(|p| p.get() >= 2);
        if can_parallelize {
            // Very loose bound (CI machines vary): parallel must not be
            // slower.
            assert!(t4 <= t1 * 2, "t1={t1:?} t4={t4:?}");
        }
    }

    #[test]
    fn instrumented_matches_uninstrumented_checksum() {
        use gb_obs::NullRecorder;
        let work = |i: usize| (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let (plain, _) = run_dynamic(300, 3, work);
        let (inst, _, stats) = run_dynamic_instrumented(300, 3, work, &NullRecorder, "t");
        assert_eq!(plain, inst);
        assert_eq!(stats.count, 300);
        assert_eq!(stats.workers.len(), 3);
        assert_eq!(stats.workers.iter().map(|w| w.tasks).sum::<u64>(), 300);
    }

    #[test]
    fn busy_plus_idle_accounts_for_wall_time() {
        use gb_obs::NullRecorder;
        let work = |i: usize| {
            let mut acc = 0u64;
            for j in 0..5_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i as u64 + j));
            }
            acc
        };
        let (_, elapsed, stats) = run_dynamic_instrumented(64, 2, work, &NullRecorder, "t");
        let wall_ns = elapsed.as_nanos() as u64;
        for w in &stats.workers {
            // Each worker's busy time is measured inside the wall
            // interval, and idle is defined as the complement.
            assert!(w.busy_ns <= wall_ns, "worker {} busy > wall", w.worker);
            assert!(
                w.busy_ns + w.idle_ns <= wall_ns,
                "worker {}: busy {} + idle {} > wall {wall_ns}",
                w.worker,
                w.busy_ns,
                w.idle_ns
            );
            // Idle is wall - busy by construction, so the sum is within
            // one measurement quantum of the wall time.
            assert!(w.busy_ns + w.idle_ns >= wall_ns.saturating_sub(1));
        }
        assert!(stats.utilization > 0.0 && stats.utilization <= 1.0);
        assert!(stats.max_ns >= stats.p50_ns);
        assert!(stats.p99_ns >= stats.p50_ns);
    }

    #[test]
    fn memory_attribution_matches_build_features() {
        use gb_obs::NullRecorder;
        let (_, _, stats) = run_dynamic_instrumented(16, 2, |i| i as u64, &NullRecorder, "t");
        if gb_obs::mem::enabled() {
            // Attribution is populated, though without a registered
            // tracking allocator the counters stay zero.
            let mem = stats.memory.expect("mem-profile builds attribute tasks");
            assert_eq!(mem.tasks, 16);
        } else {
            assert!(stats.memory.is_none(), "default builds carry no mem stats");
        }
    }

    #[test]
    fn instrumented_run_emits_spans_per_task() {
        use gb_obs::TraceRecorder;
        let rec = TraceRecorder::new();
        let (_, _, stats) = run_dynamic_instrumented(40, 2, |i| i as u64, &rec, "unit");
        assert_eq!(stats.count, 40);
        assert_eq!(rec.counters().get("tasks"), Some(&40));
        let trace = rec.into_trace();
        let spans = trace
            .events
            .iter()
            .filter(|e| e.ph == 'X' && e.name == "unit")
            .count();
        assert_eq!(spans, 40);
        // Span timestamps share the recorder's epoch and lie within the
        // run's interval.
        for e in &trace.events {
            assert_eq!(e.cat, "task");
            assert!(e.tid < 2, "track {} out of range", e.tid);
        }
    }
}
