//! Dynamic task scheduling — the suite's OpenMP-`schedule(dynamic)`
//! replacement.
//!
//! The paper parallelizes every kernel by distributing independent tasks
//! to CPU threads with OpenMP dynamic scheduling (§IV-A). This module
//! provides the same semantics: a shared atomic task cursor that idle
//! workers pull from, so imbalanced task lists (Fig. 4) still load-balance
//! well (Fig. 7).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Runs `work` over `0..num_tasks` on `threads` workers with dynamic
/// scheduling, collecting each task's `u64` result (summed into the
/// returned checksum) and the wall-clock elapsed time.
///
/// `work` must be safe to call concurrently for distinct task indices.
///
/// # Examples
///
/// ```
/// use gb_suite::pool::run_dynamic;
/// let (sum, elapsed) = run_dynamic(100, 4, |i| i as u64);
/// assert_eq!(sum, 4950);
/// assert!(elapsed.as_nanos() > 0);
/// ```
pub fn run_dynamic<F>(num_tasks: usize, threads: usize, work: F) -> (u64, Duration)
where
    F: Fn(usize) -> u64 + Sync,
{
    let threads = threads.max(1);
    let start = Instant::now();
    if threads == 1 {
        let mut acc = 0u64;
        for i in 0..num_tasks {
            acc = acc.wrapping_add(work(i));
        }
        return (acc, start.elapsed());
    }
    let cursor = AtomicUsize::new(0);
    let total = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let work = &work;
                scope.spawn(move |_| {
                    let mut acc = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= num_tasks {
                            break;
                        }
                        acc = acc.wrapping_add(work(i));
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .fold(0u64, u64::wrapping_add)
    })
    .expect("crossbeam scope");
    (total, start.elapsed())
}

/// Times a closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: usize| (i as u64).wrapping_mul(2654435761);
        let (serial, _) = run_dynamic(1000, 1, work);
        for threads in [2, 4, 8] {
            let (par, _) = run_dynamic(1000, threads, work);
            assert_eq!(par, serial, "threads {threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let (_, _) = run_dynamic(500, 4, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
            0
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let (sum, _) = run_dynamic(0, 4, |_| 1);
        assert_eq!(sum, 0);
    }

    #[test]
    fn imbalanced_tasks_load_balance() {
        // One huge task plus many tiny ones: dynamic scheduling should
        // keep the other workers busy, beating a 2x slowdown bound easily.
        let work = |i: usize| {
            let n = if i == 0 { 3_000_000u64 } else { 30_000 };
            let mut acc = 0u64;
            for j in 0..n {
                // black_box defeats closed-form loop folding.
                acc = acc.wrapping_add(std::hint::black_box(j).wrapping_mul(0x9E3779B97F4A7C15));
            }
            acc
        };
        let (a, t1) = run_dynamic(100, 1, work);
        let (b, t4) = run_dynamic(100, 4, work);
        assert_eq!(a, b);
        // Very loose bound (CI machines vary): parallel must not be slower.
        assert!(t4 <= t1 * 2, "t1={t1:?} t4={t4:?}");
    }
}
