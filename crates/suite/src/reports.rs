//! Regenerating the paper's evaluation tables and figures.
//!
//! Each `table*`/`fig*` function reproduces one exhibit of the paper's
//! evaluation section, returning human-readable text plus a JSON value
//! for downstream tooling (EXPERIMENTS.md is generated from these). The
//! functions take a [`DatasetSize`] and run the suite's kernels as
//! needed; expensive instrumented runs use bounded task samples.

use crate::dataset::DatasetSize;
use crate::kernels::{
    self, characterize, prepare, run_parallel, work_distribution, Characterization, KernelId,
};
use gb_simt::exec::GpuKernelReport;
use gb_uarch::config::MachineConfig;
use serde_json::{json, Value};

/// A generated report: rendered text plus machine-readable rows.
#[derive(Debug, Clone)]
pub struct Report {
    /// Exhibit name, e.g. `"table4"`.
    pub name: String,
    /// Human-readable rendering.
    pub text: String,
    /// JSON rows for tooling.
    pub json: Value,
}

/// Simple column-aligned table rendering.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&render(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// How many tasks each kernel's instrumented characterization samples
/// (instrumented runs are far slower than timed runs). Public so the
/// CLI can characterize individual kernels on the same budget when
/// exporting uarch counters into a run manifest.
pub fn characterize_budget(id: KernelId, size: DatasetSize) -> usize {
    let base = match id {
        KernelId::Fmi => 60,
        KernelId::Bsw => 60,
        KernelId::Dbg => 20,
        KernelId::Phmm => 4,
        KernelId::Chain => 20,
        KernelId::Spoa => 3,
        KernelId::Abea => 2,
        KernelId::KmerCnt => 1,
        KernelId::Grm => 2,
        KernelId::Pileup => 1,
        KernelId::NnBase => 1,
        KernelId::NnVariant => 3,
    };
    match size {
        DatasetSize::Tiny => base.clamp(1, 2),
        _ => base,
    }
}

/// Table I: the modelled machine configuration.
pub fn table1() -> Report {
    let cfg = MachineConfig::table1();
    Report {
        name: "table1".into(),
        text: format!(
            "Table I — Baseline system configuration (modelled)\n\n{}\n",
            cfg.to_table()
        ),
        json: serde_json::to_value(&cfg).expect("config serializes"),
    }
}

/// Table II: benchmark overview (kernel, source tool, pipeline, motif).
pub fn table2() -> Report {
    let rows: Vec<Vec<String>> = KernelId::ALL
        .iter()
        .map(|k| {
            vec![
                k.name().to_string(),
                k.source_tool().to_string(),
                k.pipeline().to_string(),
                k.motif().to_string(),
            ]
        })
        .collect();
    let text = format!(
        "Table II — GenomicsBench benchmarks and parallelism motifs\n\n{}",
        format_table(&["kernel", "source tool", "pipeline", "motif"], &rows)
    );
    let json = json!(KernelId::ALL
        .iter()
        .map(|k| json!({
            "kernel": k.name(),
            "tool": k.source_tool(),
            "pipeline": k.pipeline(),
            "motif": k.motif(),
        }))
        .collect::<Vec<_>>());
    Report {
        name: "table2".into(),
        text,
        json,
    }
}

/// Table III: parallelism granularity and measured task counts/work for
/// the irregular kernels. In `mem-profile` builds the table gains
/// measured heap columns — the peak footprint of preparing and running
/// the kernel's workload, plus per-task peak heap (max and mean across
/// tasks, each task metered on its own worker's thread-local slot so
/// the numbers stay meaningful under parallel runs); default builds
/// show dashes.
pub fn table3(size: DatasetSize) -> Report {
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for id in KernelId::ALL {
        let Some((gran, work_desc)) = id.granularity() else {
            continue;
        };
        let span = gb_obs::mem::enabled().then(gb_obs::mem::MemSpan::enter);
        let kernel = prepare(id, size);
        let dist = work_distribution(kernel.as_ref());
        // With profiling on, run the tasks once (single worker) so the
        // span's memory record carries per-task peak attribution.
        let pool_mem = gb_obs::mem::enabled().then(|| {
            let (_, _, stats) = crate::pool::run_dynamic_instrumented(
                kernel.num_tasks(),
                1,
                |i| kernel.run_task(i),
                &gb_obs::NullRecorder,
                id.name(),
            );
            stats.memory.expect("mem-profile run attributes tasks")
        });
        let mem = span.map(|s| s.exit_with_pool(pool_mem.as_ref()));
        let bytes_cell = |b: Option<u64>| match b {
            Some(b) => gb_obs::mem::format_bytes(b),
            None => "-".to_string(),
        };
        rows.push(vec![
            id.name().to_string(),
            gran.to_string(),
            work_desc.to_string(),
            kernel.num_tasks().to_string(),
            format!("{:.0}", dist.mean),
            bytes_cell(mem.as_ref().map(|m| m.peak_bytes)),
            bytes_cell(mem.as_ref().and_then(|m| m.task_peak_max_bytes)),
            bytes_cell(mem.as_ref().and_then(|m| m.task_peak_mean_bytes)),
        ]);
        let opt_bytes = |b: Option<u64>| b.map_or(Value::Null, Value::from);
        jrows.push(json!({
            "kernel": id.name(),
            "granularity": gran,
            "work": work_desc,
            "tasks": kernel.num_tasks(),
            "mean_work": dist.mean,
            "peak_heap_bytes": opt_bytes(mem.as_ref().map(|m| m.peak_bytes)),
            "task_peak_max_bytes": opt_bytes(mem.as_ref().and_then(|m| m.task_peak_max_bytes)),
            "task_peak_mean_bytes": opt_bytes(mem.as_ref().and_then(|m| m.task_peak_mean_bytes)),
        }));
    }
    let text = format!(
        "Table III — data-parallelism granularity (irregular kernels), {} dataset\n\n{}",
        size.name(),
        format_table(
            &[
                "kernel",
                "granularity",
                "data-parallel work",
                "tasks",
                "mean work/task",
                "peak heap",
                "task peak (max)",
                "task peak (mean)"
            ],
            &rows
        )
    );
    Report {
        name: "table3".into(),
        text,
        json: Value::Array(jrows),
    }
}

fn gpu_reports(size: DatasetSize) -> (GpuKernelReport, GpuKernelReport) {
    let abea = crate::kernels::abea_gpu_report(size);
    let nnbase = crate::kernels::nnbase_gpu_report(size);
    (abea, nnbase)
}

/// Table IV: GPU control-flow and compute regularity.
pub fn table4(size: DatasetSize) -> Report {
    let (abea, nn) = gpu_reports(size);
    let pct = |v: f64| format!("{:.2}%", v * 100.0);
    let rows = vec![
        vec![
            "Branch efficiency".into(),
            pct(abea.branch_efficiency),
            pct(nn.branch_efficiency),
        ],
        vec![
            "Warp efficiency".into(),
            pct(abea.warp_efficiency),
            pct(nn.warp_efficiency),
        ],
        vec![
            "Non-predicated warp efficiency".into(),
            pct(abea.nonpred_warp_efficiency),
            pct(nn.nonpred_warp_efficiency),
        ],
        vec![
            "SM utilization".into(),
            pct(abea.sm_utilization),
            pct(nn.sm_utilization),
        ],
        vec!["Occupancy".into(), pct(abea.occupancy), pct(nn.occupancy)],
    ];
    let text = format!(
        "Table IV — GPU kernel control flow and compute regularity ({} dataset)\n\n{}",
        size.name(),
        format_table(&["metric", "abea", "nn-base"], &rows)
    );
    let json = json!({ "abea": abea, "nn-base": nn });
    Report {
        name: "table4".into(),
        text,
        json,
    }
}

/// Table V: useful fraction of GPU global memory bandwidth.
pub fn table5(size: DatasetSize) -> Report {
    let (abea, nn) = gpu_reports(size);
    let pct = |v: f64| format!("{:.1}%", v * 100.0);
    let rows = vec![
        vec![
            "Global load efficiency".into(),
            pct(abea.gld_efficiency),
            pct(nn.gld_efficiency),
        ],
        vec![
            "Global store efficiency".into(),
            pct(abea.gst_efficiency),
            pct(nn.gst_efficiency),
        ],
    ];
    let text = format!(
        "Table V — useful proportion of GPU global memory bandwidth ({} dataset)\n\n{}",
        size.name(),
        format_table(&["metric", "abea", "nn-base"], &rows)
    );
    let json = json!({
        "abea": { "gld": abea.gld_efficiency, "gst": abea.gst_efficiency },
        "nn-base": { "gld": nn.gld_efficiency, "gst": nn.gst_efficiency },
    });
    Report {
        name: "table5".into(),
        text,
        json,
    }
}

/// Fig. 3: bsw inter-sequence vector over-compute (lane imbalance).
pub fn fig3(size: DatasetSize) -> Report {
    let report = kernels::bsw_batch_reports(size);
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for (label, rep) in &report {
        rows.push(vec![
            label.clone(),
            rep.scalar_cells.to_string(),
            rep.vector_cells.to_string(),
            format!("{:.2}x", rep.overcompute()),
            format!("{:.1}%", rep.dead_slot_fraction() * 100.0),
            rep.retired_lanes.to_string(),
        ]);
        jrows.push(json!({
            "config": label,
            "scalar_cells": rep.scalar_cells,
            "vector_cells": rep.vector_cells,
            "overcompute": rep.overcompute(),
            "dead_slot_fraction": rep.dead_slot_fraction(),
            "retired_lanes": rep.retired_lanes,
        }));
    }
    let text = format!(
        "Fig. 3 — bsw vectorized cell updates vs scalar ({} dataset)\n\
         (paper: AVX2 16-lane inter-sequence bsw performs 2.2x more cell updates;\n\
          length-sorted scheduling shrinks the dead-slot fraction; `retired` counts\n\
          lanes the i16 SIMD engine re-ran on the i32 precision ladder)\n\n{}",
        size.name(),
        format_table(
            &[
                "configuration",
                "scalar cells",
                "vector cell slots",
                "over-compute",
                "dead slots",
                "retired"
            ],
            &rows
        )
    );
    Report {
        name: "fig3".into(),
        text,
        json: Value::Array(jrows),
    }
}

/// Fig. 4: per-task work imbalance across the irregular kernels.
pub fn fig4(size: DatasetSize) -> Report {
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for id in KernelId::ALL {
        if id.granularity().is_none() {
            continue;
        }
        let kernel = prepare(id, size);
        let d = work_distribution(kernel.as_ref());
        rows.push(vec![
            id.name().to_string(),
            format!("{:.0}", d.mean),
            d.max.to_string(),
            d.min.to_string(),
            format!("{:.1}x", d.imbalance),
        ]);
        jrows.push(json!({
            "kernel": id.name(),
            "mean": d.mean,
            "max": d.max,
            "min": d.min,
            "imbalance": d.imbalance,
        }));
    }
    let text = format!(
        "Fig. 4 — per-task data-parallel work distribution ({} dataset)\n\
         (paper: max/mean ratios of 4.1x-8.3x; phmm outliers up to 1000x)\n\n{}",
        size.name(),
        format_table(&["kernel", "mean work", "max", "min", "max/mean"], &rows)
    );
    Report {
        name: "fig4".into(),
        text,
        json: Value::Array(jrows),
    }
}

/// Characterizes every CPU kernel once (shared by Figs. 5/6/8/9; the
/// paper's CPU characterization covers the ten CPU kernels — nn-base is
/// GPU-only and nn-variant failed under nvprof).
pub fn characterize_all(size: DatasetSize) -> Vec<(KernelId, Characterization)> {
    KernelId::ALL
        .iter()
        .filter(|id| id.is_cpu())
        .map(|&id| {
            let kernel = prepare(id, size);
            let c = characterize(kernel.as_ref(), characterize_budget(id, size));
            (id, c)
        })
        .collect()
}

/// Fig. 5: dynamic instruction mix per kernel.
pub fn fig5(chars: &[(KernelId, Characterization)]) -> Report {
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for (id, c) in chars {
        let f = c.mix.fractions();
        let pct = |v: f64| format!("{:.1}", v * 100.0);
        rows.push(vec![
            id.name().to_string(),
            pct(f[0]),
            pct(f[1]),
            pct(f[2]),
            pct(f[3]),
            pct(f[4]),
            pct(f[5]),
            pct(f[6]),
        ]);
        jrows.push(json!({
            "kernel": id.name(),
            "loads": f[0], "stores": f[1], "int": f[2], "simd": f[3],
            "fp": f[4], "branches": f[5], "other": f[6],
        }));
    }
    let text = format!(
        "Fig. 5 — dynamic instruction breakdown (percent of instructions)\n\n{}",
        format_table(
            &["kernel", "loads%", "stores%", "int%", "simd%", "fp%", "branch%", "other%"],
            &rows
        )
    );
    Report {
        name: "fig5".into(),
        text,
        json: Value::Array(jrows),
    }
}

/// Fig. 6: off-chip traffic in DRAM bytes per kilo-instruction.
pub fn fig6(chars: &[(KernelId, Characterization)]) -> Report {
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for (id, c) in chars {
        rows.push(vec![id.name().to_string(), format!("{:.2}", c.bpki)]);
        jrows.push(json!({ "kernel": id.name(), "bpki": c.bpki }));
    }
    let text = format!(
        "Fig. 6 — off-chip data requirements (DRAM bytes per kilo-instruction)\n\
         (paper: fmi 66.8, kmer-cnt 484.1, spoa 6.62, phmm 0.02)\n\n{}",
        format_table(&["kernel", "BPKI"], &rows)
    );
    Report {
        name: "fig6".into(),
        text,
        json: Value::Array(jrows),
    }
}

/// Fig. 7: thread-scaling of the multithreaded irregular kernels.
///
/// On multi-core hosts `run_parallel` runs true threads; this report uses
/// the [`crate::scaling`] simulation (measured per-task times + exact
/// dynamic-schedule makespan + bandwidth roofline) so the experiment is
/// reproducible on the single-core environments this repository targets —
/// see `DESIGN.md` for the substitution rationale.
pub fn fig7(size: DatasetSize, threads: &[usize]) -> Report {
    fig7_traced(size, threads, &gb_obs::NullRecorder)
}

/// [`fig7`] with the 2-thread validation runs instrumented through
/// `recorder` (task spans land on the trace; per-task latency
/// percentiles and the measured worker utilization join the report).
pub fn fig7_traced(
    size: DatasetSize,
    threads: &[usize],
    recorder: &dyn gb_obs::Recorder,
) -> Report {
    let scaling_kernels = [
        KernelId::Fmi,
        KernelId::Bsw,
        KernelId::Dbg,
        KernelId::Phmm,
        KernelId::Chain,
        KernelId::Spoa,
        KernelId::KmerCnt,
        KernelId::Pileup,
    ];
    let machine = MachineConfig::table1();
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for id in scaling_kernels {
        let kernel = prepare(id, size);
        // Validate that parallel execution is result-identical before
        // estimating its timing; the 2-thread run doubles as the
        // measured-utilization sample (and feeds the trace when the
        // recorder is enabled).
        let base = run_parallel(kernel.as_ref(), 1);
        let check = kernels::run_parallel_instrumented(kernel.as_ref(), 2, recorder);
        assert_eq!(
            base.checksum,
            check.checksum,
            "{} diverged under threads",
            id.name()
        );
        let measured = check.task_stats.as_ref().expect("instrumented run");
        let c = characterize(kernel.as_ref(), characterize_budget(id, size).min(4));
        let r = crate::scaling::simulated_scaling(kernel.as_ref(), &c, &machine, threads);
        let mut row = vec![id.name().to_string()];
        row.extend(r.speedup.iter().map(|s| format!("{s:.2}")));
        row.push(format!("{:.1}", r.bw_demand_gbps));
        row.push(format!("{:.0}%", measured.utilization * 100.0));
        rows.push(row);
        jrows.push(json!({
            "kernel": id.name(),
            "threads": threads,
            "speedup": r.speedup,
            "utilization": r.utilization,
            "bw_demand_gbps": r.bw_demand_gbps,
            "measured_utilization_2t": measured.utilization,
            "task_p50_ns": measured.p50_ns,
            "task_p99_ns": measured.p99_ns,
        }));
    }
    let headers: Vec<String> = std::iter::once("kernel".to_string())
        .chain(threads.iter().map(|t| format!("{t}T")))
        .chain(["BW GB/s".to_string(), "util@2T".to_string()])
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let text = format!(
        "Fig. 7 — thread scaling (speedup over 1 thread, {} dataset, dynamic scheduling)\n\
         (simulated schedule from measured task times + bandwidth roofline; util@2T measured\n\
          on an instrumented 2-thread run; paper: near-perfect scaling except kmer-cnt\n\
          (bandwidth) and pileup (random accesses))\n\n{}",
        size.name(),
        format_table(&header_refs, &rows)
    );
    Report {
        name: "fig7".into(),
        text,
        json: Value::Array(jrows),
    }
}

/// Fig. 8: cache miss rates and data-stall cycles.
pub fn fig8(chars: &[(KernelId, Characterization)]) -> Report {
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for (id, c) in chars {
        rows.push(vec![
            id.name().to_string(),
            format!("{:.1}%", c.cache.l1_miss_rate() * 100.0),
            format!("{:.1}%", c.cache.l2_miss_rate() * 100.0),
            format!("{:.1}%", c.topdown.data_stall_fraction * 100.0),
        ]);
        jrows.push(json!({
            "kernel": id.name(),
            "l1_miss_rate": c.cache.l1_miss_rate(),
            "l2_miss_rate": c.cache.l2_miss_rate(),
            "data_stall_fraction": c.topdown.data_stall_fraction,
        }));
    }
    let text = format!(
        "Fig. 8 — cache miss rates and cycles stalled on data\n\
         (paper: fmi 41.5% and kmer-cnt 69.2% of cycles stalled; others <20%)\n\n{}",
        format_table(
            &["kernel", "L1 miss", "L2 miss", "cycles stalled on data"],
            &rows
        )
    );
    Report {
        name: "fig8".into(),
        text,
        json: Value::Array(jrows),
    }
}

/// Fig. 9: top-down pipeline-slot breakdown.
pub fn fig9(chars: &[(KernelId, Characterization)]) -> Report {
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for (id, c) in chars {
        let t = &c.topdown;
        let pct = |v: f64| format!("{:.1}", v * 100.0);
        rows.push(vec![
            id.name().to_string(),
            pct(t.retiring),
            pct(t.bad_speculation),
            pct(t.frontend_bound),
            pct(t.core_bound),
            pct(t.memory_bound),
        ]);
        jrows.push(json!({
            "kernel": id.name(),
            "retiring": t.retiring,
            "bad_speculation": t.bad_speculation,
            "frontend_bound": t.frontend_bound,
            "core_bound": t.core_bound,
            "memory_bound": t.memory_bound,
        }));
    }
    let text = format!(
        "Fig. 9 — top-down pipeline-slot breakdown (percent of slots)\n\
         (paper: kmer-cnt 86.6% memory-bound; grm 87.7% retiring; bsw/chain/phmm >50% retiring)\n\n{}",
        format_table(
            &["kernel", "retiring%", "bad-spec%", "frontend%", "core%", "memory%"],
            &rows
        )
    );
    Report {
        name: "fig9".into(),
        text,
        json: Value::Array(jrows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t1 = table1();
        assert!(t1.text.contains("31.79 GB/s"));
        let t2 = table2();
        assert!(t2.text.contains("BWA-MEM2"));
        assert!(t2.text.contains("nn-variant"));
        assert_eq!(t2.json.as_array().unwrap().len(), 12);
    }

    #[test]
    fn tiny_dynamic_reports_render() {
        let t3 = table3(DatasetSize::Tiny);
        assert!(t3.text.contains("fmi"));
        let f4 = fig4(DatasetSize::Tiny);
        assert!(f4.json.as_array().unwrap().len() == 8);
    }

    #[test]
    fn format_table_aligns() {
        let t = format_table(&["a", "bb"], &[vec!["xxx".into(), "y".into()]]);
        assert!(t.contains("xxx"));
        assert!(t.lines().count() == 3);
    }
}
