//! Thread-scaling estimation (paper Fig. 7).
//!
//! The paper measures speedup on an 8-thread Xeon. This environment has a
//! single core, so wall-clock multithreaded runs cannot exhibit speedup;
//! instead the suite *simulates* the paper's experiment from first
//! principles, using measured quantities:
//!
//! 1. every task's serial execution time is measured for real;
//! 2. the OpenMP-dynamic schedule is simulated exactly (tasks pulled in
//!    order by the earliest-free worker), giving the makespan a T-thread
//!    run would achieve when compute-bound — this captures the task-count
//!    and imbalance effects (few/large tasks scale worse);
//! 3. a memory-bandwidth roofline caps the speedup: a kernel whose
//!    single-thread DRAM demand (simulated BPKI x modelled instruction
//!    rate) approaches the machine's 31.79 GB/s cannot scale — this is
//!    what flattens kmer-cnt in the paper.
//!
//! On a real multi-core host, `gb_suite::kernels::run_parallel` still
//! runs true threads; the simulation is only used for the Fig. 7 report.

use crate::kernels::{Characterization, Kernel};
use gb_uarch::config::MachineConfig;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Scaling estimate for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingResult {
    /// Thread counts evaluated.
    pub threads: Vec<usize>,
    /// Estimated speedup at each thread count.
    pub speedup: Vec<f64>,
    /// Simulated worker utilization at each thread count: total task
    /// time over `threads x makespan` (1.0 = perfectly balanced; drops
    /// when few large tasks leave workers idle, the Fig. 4 imbalance
    /// showing up in Fig. 7).
    pub utilization: Vec<f64>,
    /// The single-thread DRAM bandwidth demand in GB/s.
    pub bw_demand_gbps: f64,
    /// Measured serial time (seconds).
    pub serial_seconds: f64,
}

/// Measures per-task serial times (capping total measurement time by
/// sampling and extrapolating for very large task lists).
pub fn measure_task_times(kernel: &dyn Kernel, max_tasks: usize) -> Vec<f64> {
    let n = kernel.num_tasks();
    let sample = n.min(max_tasks.max(1));
    let mut times = Vec::with_capacity(n);
    for i in 0..sample {
        let start = Instant::now();
        std::hint::black_box(kernel.run_task(i));
        times.push(start.elapsed().as_secs_f64());
    }
    if sample < n {
        // Extrapolate the remaining tasks from their relative work.
        let sampled_work: u64 = (0..sample).map(|i| kernel.task_work(i)).sum();
        let per_work = if sampled_work == 0 {
            0.0
        } else {
            times.iter().sum::<f64>() / sampled_work as f64
        };
        for i in sample..n {
            times.push(kernel.task_work(i) as f64 * per_work);
        }
    }
    times
}

/// Exact makespan of dynamic scheduling: tasks dispatched in order to the
/// earliest-free worker.
pub fn dynamic_makespan(times: &[f64], workers: usize) -> f64 {
    let workers = workers.max(1);
    let mut finish = vec![0.0f64; workers];
    for &t in times {
        // Earliest-free worker takes the next task.
        let (idx, _) = finish
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("at least one worker");
        finish[idx] += t;
    }
    finish.iter().copied().fold(0.0, f64::max)
}

/// Estimates Fig. 7 scaling for a kernel.
pub fn simulated_scaling(
    kernel: &dyn Kernel,
    characterization: &Characterization,
    machine: &MachineConfig,
    threads: &[usize],
) -> ScalingResult {
    let times = measure_task_times(kernel, 64);
    let serial: f64 = times.iter().sum();

    // Single-thread DRAM demand: BPKI x (instructions/second). The
    // instruction rate comes from the analytic model's IPC at the
    // modelled clock.
    let ipc = characterization.topdown.ipc.max(0.05);
    let instr_per_sec = ipc * machine.clock_ghz * 1e9;
    let bw_demand = characterization.bpki / 1000.0 * instr_per_sec; // bytes/s
                                                                    // Random 64-byte accesses cannot reach peak streaming bandwidth:
                                                                    // derate the roofline by the kernel's measured non-sequential DRAM
                                                                    // fraction (the paper's kmer-cnt saturates the *random-access*
                                                                    // bandwidth well below 31.79 GB/s).
    let c = &characterization.cache;
    let seq_frac = if c.llc_misses == 0 {
        1.0
    } else {
        c.llc_seq_misses.min(c.llc_misses) as f64 / c.llc_misses as f64
    };
    const RANDOM_BW_FRACTION: f64 = 0.5;
    let effective_bw_frac = seq_frac + (1.0 - seq_frac) * RANDOM_BW_FRACTION;
    let bw_total = machine.memory_bandwidth_gbps * 1e9 * effective_bw_frac;

    let mut speedup = Vec::with_capacity(threads.len());
    let mut utilization = Vec::with_capacity(threads.len());
    for &t in threads {
        let makespan = dynamic_makespan(&times, t);
        let compute_speedup = if makespan > 0.0 {
            serial / makespan
        } else {
            1.0
        };
        let bw_cap = if bw_demand > 0.0 {
            (bw_total / bw_demand).max(1.0)
        } else {
            f64::INFINITY
        };
        speedup.push(compute_speedup.min(bw_cap).min(t as f64));
        let busy_frac = if makespan > 0.0 {
            serial / (t.max(1) as f64 * makespan)
        } else {
            1.0
        };
        utilization.push(busy_frac.min(1.0));
    }
    ScalingResult {
        threads: threads.to_vec(),
        speedup,
        utilization,
        bw_demand_gbps: bw_demand / 1e9,
        serial_seconds: serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_balanced_tasks() {
        let times = vec![1.0; 8];
        assert_eq!(dynamic_makespan(&times, 1), 8.0);
        assert_eq!(dynamic_makespan(&times, 4), 2.0);
        assert_eq!(dynamic_makespan(&times, 8), 1.0);
        assert_eq!(dynamic_makespan(&times, 16), 1.0);
    }

    #[test]
    fn makespan_single_giant_task_limits() {
        let mut times = vec![0.1; 20];
        times[0] = 10.0;
        let m = dynamic_makespan(&times, 8);
        assert!((m - 10.0).abs() < 1e-9, "giant task dominates: {m}");
    }

    #[test]
    fn makespan_empty() {
        assert_eq!(dynamic_makespan(&[], 4), 0.0);
    }

    #[test]
    fn dynamic_order_matters_for_trailing_giant() {
        // The giant task arriving last produces a worse makespan than
        // arriving first — exactly the dynamic-scheduling behaviour.
        let mut first = vec![0.5; 15];
        first.insert(0, 4.0);
        let mut last = vec![0.5; 15];
        last.push(4.0);
        assert!(dynamic_makespan(&last, 4) > dynamic_makespan(&first, 4));
    }

    #[test]
    fn scaling_on_a_real_kernel() {
        use crate::dataset::DatasetSize;
        use crate::kernels::{characterize, prepare, KernelId};
        let kernel = prepare(KernelId::Chain, DatasetSize::Tiny);
        let c = characterize(kernel.as_ref(), 2);
        let m = MachineConfig::table1();
        let r = simulated_scaling(kernel.as_ref(), &c, &m, &[1, 2, 4, 8]);
        assert_eq!(r.speedup.len(), 4);
        assert!((r.speedup[0] - 1.0).abs() < 1e-9);
        // chain is compute-bound with 20 tasks: it must scale at all; the
        // exact ceiling depends on the sampled bandwidth estimate, which
        // is noisy on tiny datasets under parallel test load.
        assert!(r.speedup[3] > 1.4, "chain speedup at 8T = {}", r.speedup[3]);
        assert!(r.speedup[3] <= 8.0);
        // Monotone non-decreasing.
        assert!(r.speedup.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        // Utilization: perfect at 1 thread, in (0, 1] everywhere, and
        // non-increasing as workers are added (imbalance only grows).
        assert_eq!(r.utilization.len(), 4);
        assert!((r.utilization[0] - 1.0).abs() < 1e-9);
        assert!(r.utilization.iter().all(|&u| u > 0.0 && u <= 1.0 + 1e-9));
        assert!(r.utilization.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    }
}
