//! End-to-end coverage for the manifest loader's failure path: corrupt
//! or wrong-schema manifest files must stop `genomicsbench compare` and
//! `genomicsbench trend` with the usage/IO exit code (2) — never the
//! regression code (1), which CI treats as a perf signal, and never a
//! panic. This is the e2e side of the panic audit in
//! `crates/obs/src/{compare,trend}.rs`: every `unwrap`/`expect` there is
//! test-only, so a bad file has to be rejected here, at the loader.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_genomicsbench"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gb_corrupt_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Produces one real tiny-tier manifest to play the healthy side.
fn valid_manifest(dir: &Path) -> PathBuf {
    let path = dir.join("valid.json");
    let out = bin()
        .args(["run", "bsw", "--tier", "tiny", "--threads", "1"])
        .arg("--manifest-out")
        .arg(&path)
        .output()
        .expect("spawn genomicsbench");
    assert!(
        out.status.success(),
        "tiny run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

fn expect_exit_2(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected usage/IO exit, got {:?}:\n{stderr}",
        out.status
    );
    assert!(
        stderr.contains("error:") && stderr.contains(needle),
        "stderr should name the failure ({needle}):\n{stderr}"
    );
}

#[test]
fn compare_rejects_truncated_and_non_json_manifests() {
    let dir = tmp_dir("compare");
    let valid = valid_manifest(&dir);

    // Truncated mid-object: what a reader would see without the
    // writer's atomic temp-file + rename.
    let truncated = dir.join("truncated.json");
    let body = std::fs::read_to_string(&valid).unwrap();
    std::fs::write(&truncated, &body[..body.len() / 2]).unwrap();

    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "not json at all\n").unwrap();

    for corrupt in [&truncated, &garbage] {
        // Corrupt on either side of the gate: both argument positions
        // go through the same loader.
        for (base, cand) in [(corrupt, &valid), (&valid, corrupt)] {
            let out = bin()
                .arg("compare")
                .arg(base)
                .arg(cand)
                .output()
                .expect("spawn genomicsbench");
            expect_exit_2(&out, corrupt.file_name().unwrap().to_str().unwrap());
        }
    }
}

#[test]
fn compare_rejects_wrong_schema_major() {
    let dir = tmp_dir("schema");
    let valid = valid_manifest(&dir);

    let mut doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&valid).unwrap()).unwrap();
    doc["schema_version"] = serde_json::Value::String("99.0".into());
    let future = dir.join("future.json");
    std::fs::write(&future, serde_json::to_string_pretty(&doc).unwrap()).unwrap();

    let out = bin()
        .arg("compare")
        .arg(&valid)
        .arg(&future)
        .output()
        .expect("spawn genomicsbench");
    expect_exit_2(&out, "unsupported manifest schema '99.0'");
}

#[test]
fn trend_rejects_corrupt_manifests() {
    let dir = tmp_dir("trend");
    let valid = valid_manifest(&dir);

    let corrupt = dir.join("corrupt.json");
    std::fs::write(&corrupt, "{\"schema_version\": ").unwrap();

    // One bad file poisons the whole series — trend must refuse to
    // silently drop it and chart the rest.
    let out = bin()
        .arg("trend")
        .arg(&valid)
        .arg(&corrupt)
        .output()
        .expect("spawn genomicsbench");
    expect_exit_2(&out, "corrupt.json");
}
