//! End-to-end CLI tests for the profile-analytics surface: `profile
//! --flame` must emit a well-formed collapsed-stack file whose total
//! agrees with the manifest wall time, and `trend` must order real
//! manifests into a series, stay quiet on steady history, and exit
//! non-zero once a seeded regression lands.
//!
//! These drive the real binary (`CARGO_BIN_EXE_genomicsbench`) on the
//! tiny tier, so they double as smoke coverage for the whole
//! instrumented profile path.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_genomicsbench"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gb_flame_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn genomicsbench");
    assert!(
        out.status.success(),
        "command failed ({:?}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Parses collapsed-stack lines into (path, value) pairs, asserting the
/// format along the way: `frame(;frame)* VALUE`, no annotations, no
/// empty frames.
fn parse_folded(body: &str) -> Vec<(String, u64)> {
    body.lines()
        .map(|line| {
            let (path, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(!path.is_empty() && !path.starts_with(';') && !path.ends_with(';'));
            assert!(
                path.split(';').all(|f| !f.is_empty() && !f.contains(' ')),
                "malformed frame path {path:?}"
            );
            (
                path.to_string(),
                value.parse::<u64>().expect("numeric value"),
            )
        })
        .collect()
}

fn profile_chain(dir: &Path, n: u32, flame: bool) -> PathBuf {
    let manifest = dir.join(format!("m{n}.json"));
    let mut cmd = bin();
    cmd.args(["profile", "chain", "--tier", "tiny", "--threads", "1"])
        .arg("--manifest-out")
        .arg(&manifest);
    if flame {
        cmd.arg("--flame").arg(dir.join(format!("m{n}.folded")));
    }
    run_ok(&mut cmd);
    manifest
}

#[test]
fn profile_flame_totals_match_the_manifest_wall_time() {
    let dir = tmp_dir("flame");
    let manifest_path = profile_chain(&dir, 1, true);
    let folded_path = dir.join("m1.folded");

    let folded = std::fs::read_to_string(&folded_path).expect("folded file written");
    let stacks = parse_folded(&folded);
    assert!(!stacks.is_empty(), "collapsed output is empty");

    // Every stack is rooted at the profiled kernel.
    for (path, _) in &stacks {
        assert!(
            path == "chain" || path.starts_with("chain;"),
            "stray root in {path:?}"
        );
    }

    // Conservation against the manifest: the folded values are µs of
    // self time, so their sum must reproduce the kernel's wall time.
    // Rounding grants ±0.5 µs per line; give it 30% for scheduler noise
    // between the two measurements of the same run.
    let manifest: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
    let wall_ns = manifest["kernels"]["chain"]["wall_ns"].as_u64().unwrap();
    let folded_us: u64 = stacks.iter().map(|(_, v)| v).sum();
    let wall_us = wall_ns as f64 / 1000.0;
    let diff = (folded_us as f64 - wall_us).abs();
    assert!(
        diff <= wall_us * 0.30 + stacks.len() as f64,
        "folded {folded_us}us vs manifest {wall_us:.1}us"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trend_is_quiet_on_steady_history_and_gates_a_seeded_regression() {
    let dir = tmp_dir("trend");
    let m1 = profile_chain(&dir, 1, false);
    let m2 = profile_chain(&dir, 2, false);
    let m3 = profile_chain(&dir, 3, false);

    // Three real runs of the same kernel on the same context: tiny-tier
    // chain sits below the 10 ms noise floor, so nothing can gate.
    let out = run_ok(bin().args(["trend"]).args([&m1, &m2, &m3]));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("no regressions"), "stdout:\n{text}");
    assert!(text.contains("chain"), "stdout:\n{text}");

    // Seed a regression: same context, later timestamp, wall time far
    // above both the floor and the tolerance.
    let mut v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&m3).unwrap()).unwrap();
    let wall = v["kernels"]["chain"]["wall_ns"].as_u64().unwrap();
    v["kernels"]["chain"]["wall_ns"] = serde_json::Value::from(wall * 20 + 50_000_000);
    let created = v["created_unix_s"].as_u64().unwrap();
    v["created_unix_s"] = serde_json::Value::from(created + 10_000);
    v["git_rev"] = serde_json::Value::from("feedbad00001");
    let m_reg = dir.join("m_reg.json");
    std::fs::write(&m_reg, serde_json::to_string_pretty(&v).unwrap()).unwrap();

    let out = bin()
        .args(["trend"])
        .args([&m1, &m2, &m3, &m_reg])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "seeded regression must gate");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("REGRESSED"), "stdout:\n{text}");

    // --json: machine-readable envelope with the same verdict.
    let out = bin()
        .args(["trend", "--json"])
        .args([&m1, &m2, &m3, &m_reg])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let j: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("trend --json emits valid JSON");
    assert_eq!(j["kind"], "trend");
    assert_eq!(j["regressions"], 1);
    assert_eq!(j["groups"][0]["kernels"][0]["kernel"], "chain");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trend_rejects_unknown_flags_and_empty_input() {
    let out = bin().args(["trend"]).output().unwrap();
    assert!(!out.status.success());
    let out = bin().args(["trend", "--bogus"]).output().unwrap();
    assert!(!out.status.success());
}

/// Rewrites a manifest's chain wall time (ms) and writes it to `out`.
fn with_wall_ms(src: &Path, out: &Path, wall_ms: u64) {
    let mut v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(src).unwrap()).unwrap();
    v["kernels"]["chain"]["wall_ns"] = serde_json::Value::from(wall_ms * 1_000_000);
    std::fs::write(out, serde_json::to_string_pretty(&v).unwrap()).unwrap();
}

#[test]
fn profile_flame_svg_writes_a_self_contained_picture() {
    let dir = tmp_dir("svg");
    let svg_path = dir.join("chain.svg");
    run_ok(
        bin()
            .args(["profile", "chain", "--tier", "tiny", "--threads", "1"])
            .arg("--flame-svg")
            .arg(&svg_path),
    );
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<?xml"), "not an XML document");
    assert!(svg.trim_end().ends_with("</svg>"));
    assert!(svg.contains("data-path=\"chain\""), "kernel frame missing");
    assert!(!svg.contains("href"), "artifact must be self-contained");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_names_the_regressing_stage_and_writes_a_differential_svg() {
    let dir = tmp_dir("attr");
    let base = profile_chain(&dir, 1, false);

    // Seed a +60 ms regression concentrated in the task-execution
    // stage: +55 ms inside chain;tasks, the remaining +5 ms as root
    // (scheduler) self time, so attribution must lead with chain;tasks.
    let mut v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&base).unwrap()).unwrap();
    let wall = v["kernels"]["chain"]["wall_ns"].as_u64().unwrap();
    v["kernels"]["chain"]["wall_ns"] = serde_json::Value::from(wall + 60_000_000);
    let stages = v["kernels"]["chain"]["stages"]
        .as_array_mut()
        .expect("profile manifests carry stage totals");
    for s in stages.iter_mut() {
        let path = s["path"].as_str().unwrap().to_string();
        let total = s["total_ns"].as_u64().unwrap();
        let bump = if path == "chain" {
            60_000_000
        } else if path.starts_with("chain;tasks") {
            55_000_000
        } else {
            0
        };
        s["total_ns"] = serde_json::Value::from(total + bump);
    }
    let cand = dir.join("cand.json");
    std::fs::write(&cand, serde_json::to_string_pretty(&v).unwrap()).unwrap();

    let diff_dir = dir.join("diffs");
    let out = bin()
        .args(["compare"])
        .args([&base, &cand])
        .arg("--diff-svg")
        .arg(&diff_dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "seeded regression must gate");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("stage attribution for chain"),
        "stdout:\n{text}"
    );
    // The ranked table leads with the stage that actually regressed.
    let table_top = text
        .lines()
        .skip_while(|l| !l.contains("stage attribution"))
        .find(|l| l.contains("chain;"))
        .unwrap_or_else(|| panic!("no stage row in:\n{text}"));
    assert!(table_top.contains("chain;tasks"), "top row: {table_top}");

    let svg =
        std::fs::read_to_string(diff_dir.join("chain-diff.svg")).expect("differential svg written");
    assert!(svg.starts_with("<?xml") && svg.trim_end().ends_with("</svg>"));
    assert!(svg.contains("data-status=\"matched\""));
    assert!(!svg.contains("href"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn baseline_dir_gates_against_the_pointwise_min_not_a_lucky_slow_run() {
    let dir = tmp_dir("mindir");
    let seed = profile_chain(&dir, 1, false);
    let bases = dir.join("bases");
    std::fs::create_dir_all(&bases).unwrap();

    // Two baseline runs of the same context — one lucky-slow (200 ms),
    // one fast (160 ms) — and a 190 ms candidate: better than the slow
    // run, ~19% worse than the best one.
    with_wall_ms(&seed, &bases.join("slow.json"), 200);
    with_wall_ms(&seed, &bases.join("fast.json"), 160);
    let cand = dir.join("cand.json");
    with_wall_ms(&seed, &cand, 190);

    // Against the slow baseline alone the candidate sails through …
    run_ok(
        bin()
            .args(["compare"])
            .args([bases.join("slow.json"), cand.clone()]),
    );

    // … but the pointwise min over the directory still gates it.
    let out = bin()
        .args(["compare", "--baseline-dir"])
        .arg(&bases)
        .arg(&cand)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "min-over-N must catch what the lucky baseline masks:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("pointwise min of 2 manifest(s)"),
        "stdout:\n{text}"
    );
    assert!(text.contains("REGRESSED"), "stdout:\n{text}");

    // A candidate matching the min passes the same gate.
    let good = dir.join("good.json");
    with_wall_ms(&seed, &good, 160);
    run_ok(
        bin()
            .args(["compare", "--baseline-dir"])
            .arg(&bases)
            .arg(&good),
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_appends_a_markdown_summary_when_the_env_var_is_set() {
    let dir = tmp_dir("ghsum");
    let m1 = profile_chain(&dir, 1, false);
    let m2 = profile_chain(&dir, 2, false);
    let summary = dir.join("step_summary.md");

    run_ok(
        bin()
            .args(["compare"])
            .args([&m1, &m2])
            .arg("--write-github-summary")
            .env("GITHUB_STEP_SUMMARY", &summary),
    );
    let md = std::fs::read_to_string(&summary).expect("summary written");
    assert!(md.contains("## Manifest compare"), "md:\n{md}");
    assert!(md.contains("| kernel |"), "md:\n{md}");
    assert!(md.contains("chain"), "md:\n{md}");

    // A second invocation appends rather than truncates.
    run_ok(
        bin()
            .args(["compare"])
            .args([&m1, &m2])
            .arg("--write-github-summary")
            .env("GITHUB_STEP_SUMMARY", &summary),
    );
    let md2 = std::fs::read_to_string(&summary).unwrap();
    assert_eq!(md2.matches("## Manifest compare").count(), 2);

    std::fs::remove_dir_all(&dir).ok();
}
