//! The acceptance criterion for per-task heap attribution: two
//! allocation-heavy "kernels" running concurrently on a multi-thread
//! pool must report per-kernel peaks within 10% of their 1-thread solo
//! peaks. Under the old global-counter tracker each concurrent span
//! absorbed the other's 32 MiB workload and reported roughly 2x.
//!
//! Run with `cargo test -p gb-suite --features mem-profile`.
#![cfg(feature = "mem-profile")]

use gb_obs::mem::{MemSpan, TrackingAllocator};
use gb_obs::{MemoryRecord, NullRecorder};
use gb_suite::pool::run_dynamic_instrumented;
use std::sync::Barrier;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// Retained "prepared workload" per kernel instance.
const RETAINED: usize = 32 << 20;
/// Transient allocation per pool task.
const TASK_BYTES: usize = 64 << 10;
const TASKS: usize = 64;

/// A synthetic allocation-heavy kernel: prepare a retained workload,
/// then run tasks through the instrumented pool, each allocating (and
/// dropping) a per-task buffer. Mirrors the `MemSpan` wiring in the
/// `genomicsbench` binary.
fn run_fake_kernel(pool_threads: usize) -> MemoryRecord {
    let span = MemSpan::enter();
    let workload = std::hint::black_box(vec![0xC3u8; RETAINED]);
    let (_, _, stats) = run_dynamic_instrumented(
        TASKS,
        pool_threads,
        |i| {
            let buf = std::hint::black_box(vec![i as u8; TASK_BYTES]);
            buf.iter().map(|&b| u64::from(b)).sum()
        },
        &NullRecorder,
        "fake-kernel",
    );
    drop(workload);
    span.exit_with_pool(stats.memory.as_ref())
}

#[test]
fn task_peaks_reflect_per_task_allocations() {
    let r = run_fake_kernel(2);
    let max = r.task_peak_max_bytes.expect("pool attribution present");
    let mean = r.task_peak_mean_bytes.expect("pool attribution present");
    let task = TASK_BYTES as u64;
    assert!(max >= task, "task peak {max} below the per-task buffer");
    assert!(max <= 2 * task, "task peak {max} absorbed foreign work");
    assert!(mean >= task / 2 && mean <= max, "mean {mean} out of range");
}

#[test]
fn concurrent_kernels_match_their_solo_peaks() {
    let solo = run_fake_kernel(1);
    assert!(
        solo.peak_bytes >= RETAINED as u64,
        "solo peak {} below the retained workload",
        solo.peak_bytes
    );

    // Two kernel instances, each on a 2-worker pool, running at the
    // same time (4 measured worker threads total).
    let barrier = Barrier::new(2);
    let peaks: Vec<u64> = std::thread::scope(|s| {
        (0..2)
            .map(|_| {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    run_fake_kernel(2).peak_bytes
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    for peak in peaks {
        let rel = (peak as f64 - solo.peak_bytes as f64).abs() / solo.peak_bytes as f64;
        assert!(
            rel <= 0.10,
            "concurrent peak {} deviates {:.1}% from solo peak {} — cross-talk",
            peak,
            rel * 100.0,
            solo.peak_bytes
        );
    }
}
