//! End-to-end coverage for the warm substrate cache.
//!
//! Three properties the cache must never trade away for speed:
//!
//! 1. **Identity** — a kernel instantiated from a disk-loaded substrate
//!    produces bit-identical checksums to one built cold, for every
//!    kernel in the suite.
//! 2. **CLI warm path** — two `genomicsbench run` invocations sharing a
//!    `--substrate-cache` directory agree on every checksum, and the
//!    second run's manifest records `cache_hit: true` with a smaller
//!    prepare wall.
//! 3. **Silent rebuild** — corrupt, truncated, or wrong-schema cache
//!    entries are treated as misses: the run rebuilds, exits 0, and the
//!    checksums still match. A broken cache may cost time, never
//!    correctness and never an error exit.

use gb_substrate::SubstrateCache;
use gb_suite::kernels::{prepare_cached, run_serial, KernelId};
use gb_suite::DatasetSize;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_genomicsbench"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gb_subcache_{tag}_{}", std::process::id()));
    // Tests may rerun in one process tree; start from a clean slate so
    // "cold" really is cold.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every kernel: build cold through one cache (which persists to disk),
/// then reload through a *fresh* cache sharing only the store directory
/// — so the second prepare cannot hit the in-process memo and must
/// decode the on-disk payload. Checksums must be bit-identical.
#[test]
fn every_kernel_round_trips_through_the_disk_store() {
    let dir = tmp_dir("roundtrip");
    for id in KernelId::ALL {
        let cold_cache = SubstrateCache::with_store(&dir).unwrap();
        let (cold, s1) = prepare_cached(id, DatasetSize::Tiny, gb_dp::DpEngine::Simd, &cold_cache);
        assert!(!s1.cache_hit, "{}: first prepare must build", id.name());

        let warm_cache = SubstrateCache::with_store(&dir).unwrap();
        let (warm, s2) = prepare_cached(id, DatasetSize::Tiny, gb_dp::DpEngine::Simd, &warm_cache);
        assert!(
            s2.cache_hit,
            "{}: fresh cache over the same store must hit disk",
            id.name()
        );

        assert_eq!(
            run_serial(cold.as_ref()).checksum,
            run_serial(warm.as_ref()).checksum,
            "{}: disk round-trip changed the checksum",
            id.name()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn run_with_cache(cache: &Path, manifest: &Path) -> Output {
    bin()
        .args(["run", "fmi,chain,grm", "--size", "tiny", "--threads", "2"])
        .arg("--substrate-cache")
        .arg(cache)
        .arg("--manifest-out")
        .arg(manifest)
        .output()
        .expect("spawn genomicsbench")
}

fn kernels_of(manifest: &Path) -> serde_json::Map<String, serde_json::Value> {
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(manifest).unwrap()).unwrap();
    v["kernels"].as_object().unwrap().clone()
}

#[test]
fn cold_then_warm_cli_runs_are_bit_identical_and_warm_hits() {
    let dir = tmp_dir("cli");
    let (cold_m, warm_m) = (dir.join("cold.json"), dir.join("warm.json"));
    let cache = dir.join("cache");

    for (path, expect_hit) in [(&cold_m, false), (&warm_m, true)] {
        let out = run_with_cache(&cache, path);
        assert!(
            out.status.success(),
            "run failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        for (name, k) in kernels_of(path) {
            assert_eq!(
                k["cache_hit"].as_bool(),
                Some(expect_hit),
                "{name}: expected cache_hit={expect_hit} in {}",
                path.display()
            );
            assert!(k["prepare_wall_ns"].as_u64().is_some(), "{name}");
        }
    }

    let (cold, warm) = (kernels_of(&cold_m), kernels_of(&warm_m));
    assert_eq!(cold.len(), 3);
    for (name, ck) in &cold {
        let wk = warm.get(name.as_str()).expect("kernel present in warm run");
        assert_eq!(
            ck["checksum"], wk["checksum"],
            "{name}: warm run diverged from cold run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_silently_rebuild() {
    let dir = tmp_dir("corrupt");
    let cache = dir.join("cache");
    let out = run_with_cache(&cache, &dir.join("seed.json"));
    assert!(out.status.success());

    // Vandalize every entry a different way: truncate one, scribble
    // over another, swap in garbage for the rest.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert!(entries.len() >= 3, "expected one entry per kernel");
    for (i, path) in entries.iter().enumerate() {
        match i % 3 {
            0 => {
                let bytes = std::fs::read(path).unwrap();
                std::fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
            }
            1 => {
                let mut bytes = std::fs::read(path).unwrap();
                for b in bytes.iter_mut().skip(4).take(16) {
                    *b ^= 0xFF;
                }
                std::fs::write(path, bytes).unwrap();
            }
            _ => std::fs::write(path, b"not a substrate").unwrap(),
        }
    }

    let rebuilt = dir.join("rebuilt.json");
    let out = run_with_cache(&cache, &rebuilt);
    assert!(
        out.status.success(),
        "corrupt cache must not fail the run:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for (name, k) in kernels_of(&rebuilt) {
        assert_eq!(
            k["cache_hit"].as_bool(),
            Some(false),
            "{name}: corrupt entry should read as a miss"
        );
    }

    // And the rebuilt cache is healthy again: one more run hits.
    let healed = dir.join("healed.json");
    assert!(run_with_cache(&cache, &healed).status.success());
    for (name, k) in kernels_of(&healed) {
        assert_eq!(k["cache_hit"].as_bool(), Some(true), "{name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_cache_flag_disables_persistence() {
    let dir = tmp_dir("nocache");
    let manifest = dir.join("m.json");
    let out = bin()
        .args(["run", "grm", "--size", "tiny", "--no-cache"])
        .arg("--manifest-out")
        .arg(&manifest)
        .output()
        .expect("spawn genomicsbench");
    assert!(out.status.success());
    for (name, k) in kernels_of(&manifest) {
        assert_eq!(k["cache_hit"].as_bool(), Some(false), "{name}");
    }

    // Mutually exclusive flags are a usage error (exit 2), not a panic.
    let out = bin()
        .args(["run", "grm", "--size", "tiny", "--no-cache"])
        .args(["--substrate-cache"])
        .arg(dir.join("cache"))
        .output()
        .expect("spawn genomicsbench");
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
