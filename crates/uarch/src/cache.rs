//! A trace-driven multi-level cache simulator.
//!
//! The paper measures cache miss rates, data-stall cycles and off-chip
//! traffic (Figs. 6 and 8) with hardware event-based sampling. Here the
//! same quantities come from simulating the kernel's actual load/store
//! address stream (delivered through [`CacheProbe`]) against a
//! Skylake-client-like hierarchy matching Table I of the paper.
//!
//! The model is a classic set-associative, write-allocate, writeback
//! hierarchy with true-LRU replacement and a DRAM row-buffer model behind
//! the last-level cache.

use crate::mix::{InstructionMix, MixProbe};
use crate::probe::Probe;
use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into a whole power-of-two
    /// number of sets.
    // PANIC-FREE: documented `# Panics` contract on the geometry; all
    // shipped geometries satisfy it.
    pub fn num_sets(&self) -> usize {
        let sets = self.size_bytes / (self.assoc * self.line_bytes);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a positive power of two"
        );
        sets
    }
}

/// One set-associative cache level with true-LRU replacement.
#[derive(Debug, Clone)]
struct CacheLevel {
    geom: CacheGeometry,
    /// `tags[set]` holds `(tag, dirty)` in LRU order: front = MRU.
    tags: Vec<Vec<(u64, bool)>>,
    accesses: u64,
    misses: u64,
}

impl CacheLevel {
    // PANIC-FREE: only `num_sets` can panic, per its documented contract.
    fn new(geom: CacheGeometry) -> CacheLevel {
        let sets = geom.num_sets();
        CacheLevel {
            geom,
            tags: vec![Vec::new(); sets],
            accesses: 0,
            misses: 0,
        }
    }

    fn set_and_tag(&self, line_addr: u64) -> (usize, u64) {
        let sets = self.tags.len() as u64;
        ((line_addr % sets) as usize, line_addr / sets)
    }

    /// Looks up `line_addr`; on hit, promotes to MRU and merges `dirty`.
    /// Returns `true` on hit.
    fn access(&mut self, line_addr: u64, dirty: bool) -> bool {
        self.accesses += 1;
        let (set, tag) = self.set_and_tag(line_addr);
        let ways = &mut self.tags[set];
        if let Some(i) = ways.iter().position(|&(t, _)| t == tag) {
            let (t, d) = ways.remove(i);
            ways.insert(0, (t, d || dirty));
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Installs `line_addr` as MRU; returns the evicted `(line_addr, dirty)`
    /// victim if the set was full.
    fn fill(&mut self, line_addr: u64, dirty: bool) -> Option<(u64, bool)> {
        let (set, tag) = self.set_and_tag(line_addr);
        let sets = self.tags.len() as u64;
        let assoc = self.geom.assoc;
        let ways = &mut self.tags[set];
        debug_assert!(
            !ways.iter().any(|&(t, _)| t == tag),
            "fill of resident line"
        );
        ways.insert(0, (tag, dirty));
        if ways.len() > assoc {
            let (vt, vd) = ways.pop().expect("just checked length");
            Some((vt * sets + set as u64, vd))
        } else {
            None
        }
    }
}

/// Aggregate statistics of a simulated hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// L1D accesses (after line splitting).
    pub l1_accesses: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 accesses (= L1 misses).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// LLC accesses (= L2 misses).
    pub llc_accesses: u64,
    /// LLC misses (lines fetched from DRAM).
    pub llc_misses: u64,
    /// Lines written back to DRAM (dirty LLC evictions).
    pub writebacks: u64,
    /// DRAM accesses that hit an open row buffer.
    pub dram_row_hits: u64,
    /// DRAM accesses that had to open a new row ("new DRAM page" in the
    /// paper's fmi discussion).
    pub dram_row_misses: u64,
    /// L1 misses that continued a sequential stream (next line of a
    /// recent miss) — what a hardware stride prefetcher would cover.
    pub l1_seq_misses: u64,
    /// L2 misses on sequential streams.
    pub l2_seq_misses: u64,
    /// LLC misses on sequential streams.
    pub llc_seq_misses: u64,
    /// DTLB lookups (one per line-split access).
    pub tlb_accesses: u64,
    /// DTLB misses (page-walk triggers) — significant for the
    /// multi-gigabyte-working-set kernels (fmi, kmer-cnt).
    pub tlb_misses: u64,
}

impl CacheStats {
    /// L1 miss rate in `[0, 1]` (0 when there were no accesses).
    pub fn l1_miss_rate(&self) -> f64 {
        ratio(self.l1_misses, self.l1_accesses)
    }

    /// L2 local miss rate in `[0, 1]`.
    pub fn l2_miss_rate(&self) -> f64 {
        ratio(self.l2_misses, self.l2_accesses)
    }

    /// LLC local miss rate in `[0, 1]`.
    pub fn llc_miss_rate(&self) -> f64 {
        ratio(self.llc_misses, self.llc_accesses)
    }

    /// Fraction of DRAM accesses that opened a new row.
    pub fn row_miss_rate(&self) -> f64 {
        ratio(
            self.dram_row_misses,
            self.dram_row_hits + self.dram_row_misses,
        )
    }

    /// Total DRAM traffic in bytes (fills + writebacks), for the paper's
    /// BPKI metric (Fig. 6).
    pub fn dram_bytes(&self, line_bytes: usize) -> u64 {
        (self.llc_misses + self.writebacks) * line_bytes as u64
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// DRAM row-buffer model: `banks` independent open rows of `row_bytes`
/// each. Address mapping: line offset | bank | row (row index above the
/// bank bits), a common open-page interleaving.
#[derive(Debug, Clone)]
struct DramModel {
    row_bytes: u64,
    open_rows: Vec<Option<u64>>,
}

impl DramModel {
    fn new(banks: usize, row_bytes: u64) -> DramModel {
        DramModel {
            row_bytes,
            open_rows: vec![None; banks],
        }
    }

    /// Returns `true` if the access hits the open row of its bank.
    fn access(&mut self, addr: u64) -> bool {
        let banks = self.open_rows.len() as u64;
        let bank = (addr / self.row_bytes) % banks;
        let row = addr / (self.row_bytes * banks);
        let slot = &mut self.open_rows[bank as usize];
        if *slot == Some(row) {
            true
        } else {
            *slot = Some(row);
            false
        }
    }
}

/// The three-level hierarchy (L1D, L2, LLC) plus DRAM model.
///
/// # Examples
///
/// ```
/// use gb_uarch::cache::Hierarchy;
/// let mut h = Hierarchy::skylake_like();
/// h.load(0x1000, 8);
/// h.load(0x1008, 8); // same line: hits L1
/// let s = h.stats();
/// assert_eq!(s.l1_accesses, 2);
/// assert_eq!(s.l1_misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: CacheLevel,
    l2: CacheLevel,
    llc: CacheLevel,
    dram: DramModel,
    stats: CacheStats,
    /// Recent miss lines, for sequential-stream (prefetchability)
    /// detection; round-robin replacement.
    streams: Vec<u64>,
    stream_cursor: usize,
    /// DTLB: LRU list of resident 4 KiB page numbers (front = MRU).
    tlb: Vec<u64>,
}

/// DTLB entries (Skylake L1 DTLB: 64 entries for 4 KiB pages).
const TLB_ENTRIES: usize = 64;
/// Page size assumed by the DTLB model.
const PAGE_BYTES: u64 = 4096;

impl Hierarchy {
    /// Builds a hierarchy from explicit geometries.
    ///
    /// All levels must share `line_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if line sizes differ or a geometry is degenerate.
    // PANIC-FREE: documented `# Panics` contract; the shipped geometries
    // share one line size.
    pub fn new(l1: CacheGeometry, l2: CacheGeometry, llc: CacheGeometry) -> Hierarchy {
        assert_eq!(l1.line_bytes, l2.line_bytes);
        assert_eq!(l2.line_bytes, llc.line_bytes);
        Hierarchy {
            l1: CacheLevel::new(l1),
            l2: CacheLevel::new(l2),
            llc: CacheLevel::new(llc),
            dram: DramModel::new(8, 8192),
            stats: CacheStats::default(),
            streams: vec![u64::MAX; 16],
            stream_cursor: 0,
            tlb: Vec::with_capacity(TLB_ENTRIES),
        }
    }

    /// The per-core hierarchy of the paper's Table I machine (Xeon
    /// E3-1240 v5, Skylake client): 32 KB 8-way L1D, 256 KB 4-way L2,
    /// 8 MB 16-way shared LLC, 64-byte lines.
    pub fn skylake_like() -> Hierarchy {
        Hierarchy::new(
            CacheGeometry {
                size_bytes: 32 << 10,
                assoc: 8,
                line_bytes: 64,
            },
            CacheGeometry {
                size_bytes: 256 << 10,
                assoc: 4,
                line_bytes: 64,
            },
            CacheGeometry {
                size_bytes: 8 << 20,
                assoc: 16,
                line_bytes: 64,
            },
        )
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.l1.geom.line_bytes
    }

    /// Simulates a read of `bytes` bytes at `addr` (split across lines as
    /// needed).
    pub fn load(&mut self, addr: u64, bytes: u32) {
        self.access(addr, bytes, false);
    }

    /// Simulates a write of `bytes` bytes at `addr`.
    pub fn store(&mut self, addr: u64, bytes: u32) {
        self.access(addr, bytes, true);
    }

    fn access(&mut self, addr: u64, bytes: u32, write: bool) {
        let line = self.line_bytes() as u64;
        let first = addr / line;
        let last = (addr + u64::from(bytes.max(1)) - 1) / line;
        for l in first..=last {
            self.access_line(l, write);
        }
    }

    /// Returns true when `line_addr` continues a recent miss stream (a
    /// stride-1 prefetcher would have fetched it), updating the stream
    /// table either way.
    fn stream_check(&mut self, line_addr: u64) -> bool {
        let sequential = if let Some(slot) = self
            .streams
            .iter_mut()
            .find(|s| line_addr == s.wrapping_add(1))
        {
            *slot = line_addr;
            true
        } else {
            let cur = self.stream_cursor;
            self.streams[cur] = line_addr;
            self.stream_cursor = (cur + 1) % self.streams.len();
            false
        };
        sequential
    }

    /// One DTLB lookup for the page containing `line_addr`'s line.
    fn tlb_access(&mut self, line_addr: u64) {
        self.stats.tlb_accesses += 1;
        let page = line_addr * self.l1.geom.line_bytes as u64 / PAGE_BYTES;
        if let Some(i) = self.tlb.iter().position(|&p| p == page) {
            let p = self.tlb.remove(i);
            self.tlb.insert(0, p);
        } else {
            self.stats.tlb_misses += 1;
            self.tlb.insert(0, page);
            self.tlb.truncate(TLB_ENTRIES);
        }
    }

    fn access_line(&mut self, line_addr: u64, write: bool) {
        self.tlb_access(line_addr);
        self.stats.l1_accesses += 1;
        if self.l1.access(line_addr, write) {
            return;
        }
        let sequential = self.stream_check(line_addr);
        self.stats.l1_misses += 1;
        self.stats.l1_seq_misses += u64::from(sequential);
        self.stats.l2_accesses += 1;
        let mut from_l2 = false;
        if self.l2.access(line_addr, false) {
            from_l2 = true;
        } else {
            self.stats.l2_misses += 1;
            self.stats.l2_seq_misses += u64::from(sequential);
            self.stats.llc_accesses += 1;
            if !self.llc.access(line_addr, false) {
                self.stats.llc_misses += 1;
                self.stats.llc_seq_misses += u64::from(sequential);
                // Fetch from DRAM.
                if self.dram.access(line_addr * self.line_bytes() as u64) {
                    self.stats.dram_row_hits += 1;
                } else {
                    self.stats.dram_row_misses += 1;
                }
                if let Some((victim, dirty)) = self.llc.fill(line_addr, false) {
                    // Inclusive LLC: back-invalidate inner levels.
                    self.invalidate_inner(victim, dirty);
                }
            }
            if let Some((victim, dirty)) = self.l2.fill(line_addr, false) {
                // Non-inclusive L2: dirty victims go to LLC.
                self.insert_llc_victim(victim, dirty);
            }
        }
        let _ = from_l2;
        if let Some((victim, dirty)) = self.l1.fill(line_addr, write) {
            if dirty {
                // Writeback into L2 (allocate there if absent).
                if !self.l2.access(victim, true) {
                    self.l2.misses -= 1; // writeback lookups are not demand misses
                    self.l2.accesses -= 1;
                    if let Some((v2, d2)) = self.l2.fill(victim, true) {
                        self.insert_llc_victim(v2, d2);
                    }
                }
            }
        }
    }

    /// Places an L2 victim into the LLC (without demand-miss accounting).
    fn insert_llc_victim(&mut self, line_addr: u64, dirty: bool) {
        if self.llc.access(line_addr, dirty) {
            self.llc.accesses -= 1;
        } else {
            self.llc.accesses -= 1;
            self.llc.misses -= 1;
            if let Some((victim, vdirty)) = self.llc.fill(line_addr, dirty) {
                self.invalidate_inner(victim, vdirty);
            }
        }
    }

    fn invalidate_inner(&mut self, line_addr: u64, dirty: bool) {
        let mut was_dirty = dirty;
        for level in [&mut self.l1, &mut self.l2] {
            let (set, tag) = level.set_and_tag(line_addr);
            if let Some(i) = level.tags[set].iter().position(|&(t, _)| t == tag) {
                let (_, d) = level.tags[set].remove(i);
                was_dirty |= d;
            }
        }
        if was_dirty {
            self.stats.writebacks += 1;
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the statistics while keeping cache and row-buffer contents —
    /// used to measure steady-state behaviour after a warm-up pass.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

/// A [`Probe`] that simulates the hierarchy *and* records the instruction
/// mix — one instrumented kernel run produces everything Figs. 5, 6, 8
/// and 9 need.
#[derive(Debug)]
pub struct CacheProbe {
    hierarchy: Hierarchy,
    mix: MixProbe,
}

impl CacheProbe {
    /// Creates a probe over the Table I hierarchy.
    pub fn skylake_like() -> CacheProbe {
        CacheProbe {
            hierarchy: Hierarchy::skylake_like(),
            mix: MixProbe::new(),
        }
    }

    /// Creates a probe over a custom hierarchy.
    pub fn with_hierarchy(hierarchy: Hierarchy) -> CacheProbe {
        CacheProbe {
            hierarchy,
            mix: MixProbe::new(),
        }
    }

    /// Cache statistics so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.hierarchy.stats()
    }

    /// Instruction mix so far.
    pub fn mix(&self) -> &InstructionMix {
        self.mix.mix()
    }

    /// Line size of the simulated hierarchy.
    pub fn line_bytes(&self) -> usize {
        self.hierarchy.line_bytes()
    }

    /// Consumes the probe, returning `(mix, cache stats)`.
    pub fn into_parts(self) -> (InstructionMix, CacheStats) {
        (self.mix.into_mix(), self.hierarchy.stats())
    }

    /// Clears mix and cache statistics but keeps cache contents warm —
    /// call after a warm-up pass so compulsory misses of the first task
    /// don't skew steady-state measurements.
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
        self.mix = MixProbe::new();
    }

    /// DRAM bytes per kilo-instruction — the paper's Fig. 6 metric.
    pub fn bpki(&self) -> f64 {
        let instr = self.mix.mix().total();
        if instr == 0 {
            return 0.0;
        }
        self.cache_stats().dram_bytes(self.line_bytes()) as f64 / (instr as f64 / 1000.0)
    }
}

impl Probe for CacheProbe {
    #[inline]
    fn load(&mut self, addr: u64, bytes: u32) {
        self.mix.load(addr, bytes);
        self.hierarchy.load(addr, bytes);
    }

    #[inline]
    fn store(&mut self, addr: u64, bytes: u32) {
        self.mix.store(addr, bytes);
        self.hierarchy.store(addr, bytes);
    }

    #[inline]
    fn int_ops(&mut self, n: u64) {
        self.mix.int_ops(n);
    }

    #[inline]
    fn fp_ops(&mut self, n: u64) {
        self.mix.fp_ops(n);
    }

    #[inline]
    fn simd_ops(&mut self, n: u64) {
        self.mix.simd_ops(n);
    }

    #[inline]
    fn branch(&mut self, taken: bool) {
        self.mix.branch(taken);
    }

    #[inline]
    fn other_ops(&mut self, n: u64) {
        self.mix.other_ops(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        // 2 sets x 2 ways x 64B = 256B L1; 512B L2; 1KB LLC.
        Hierarchy::new(
            CacheGeometry {
                size_bytes: 256,
                assoc: 2,
                line_bytes: 64,
            },
            CacheGeometry {
                size_bytes: 512,
                assoc: 2,
                line_bytes: 64,
            },
            CacheGeometry {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
            },
        )
    }

    #[test]
    fn repeated_access_hits_l1() {
        let mut h = tiny();
        for _ in 0..10 {
            h.load(0x40, 4);
        }
        let s = h.stats();
        assert_eq!(s.l1_accesses, 10);
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.llc_misses, 1);
    }

    #[test]
    fn line_split_counts_two_accesses() {
        let mut h = tiny();
        h.load(60, 8); // crosses the 64-byte boundary
        assert_eq!(h.stats().l1_accesses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut h = tiny();
        // Three lines mapping to set 0 of the 2-way L1 (stride = sets*line = 128).
        h.load(0, 4);
        h.load(128, 4);
        h.load(256, 4);
        // Line 0 was LRU and must have been evicted.
        h.load(0, 4);
        let s = h.stats();
        assert_eq!(s.l1_misses, 4);
        // But line 0 still sits in L2, so no extra LLC miss for the re-fetch.
        assert_eq!(s.llc_misses, 3);
    }

    #[test]
    fn dirty_lines_write_back_to_dram() {
        let mut h = tiny();
        // Write a line, then stream enough conflicting lines through every
        // level to force it all the way out.
        h.store(0, 4);
        for i in 1..64u64 {
            h.load(i * 128, 4);
        }
        assert!(
            h.stats().writebacks >= 1,
            "dirty line never reached DRAM: {:?}",
            h.stats()
        );
    }

    #[test]
    fn streaming_misses_every_line() {
        let mut h = Hierarchy::skylake_like();
        for i in 0..1000u64 {
            h.load(i * 64, 8);
        }
        let s = h.stats();
        assert_eq!(s.l1_misses, 1000);
        assert_eq!(s.llc_misses, 1000);
        // Sequential lines share DRAM rows: mostly row hits.
        assert!(s.dram_row_hits > s.dram_row_misses);
    }

    #[test]
    fn random_large_stride_misses_rows() {
        let mut h = Hierarchy::skylake_like();
        let mut x = 12345u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (x >> 16) % (1 << 34); // ~16 GB working set
            h.load(addr, 8);
        }
        let s = h.stats();
        assert!(
            s.row_miss_rate() > 0.8,
            "row miss rate {}",
            s.row_miss_rate()
        );
    }

    #[test]
    fn probe_computes_bpki() {
        let mut p = CacheProbe::skylake_like();
        for i in 0..1000u64 {
            p.load(i * 64, 8);
            p.int_ops(9);
        }
        // 1000 lines * 64B over 10k instructions = 6400 B/Kinst.
        let bpki = p.bpki();
        assert!((bpki - 6400.0).abs() < 1.0, "bpki = {bpki}");
    }

    #[test]
    fn stats_zero_safe() {
        let s = CacheStats::default();
        assert_eq!(s.l1_miss_rate(), 0.0);
        assert_eq!(s.row_miss_rate(), 0.0);
    }
}
