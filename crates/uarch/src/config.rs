//! The modelled machine configuration (Table I of the paper).

use serde::{Deserialize, Serialize};

/// The baseline system configuration the suite characterizes against,
/// mirroring Table I of the paper (Intel Xeon E3-1240 v5 + Titan Xp).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// CPU model string.
    pub cpu: String,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Number of cores.
    pub cores: usize,
    /// Hardware threads.
    pub threads: usize,
    /// SIMD ISA.
    pub simd: String,
    /// L1 data cache description.
    pub l1d: String,
    /// L2 cache description.
    pub l2: String,
    /// Last-level cache description.
    pub llc: String,
    /// Peak DRAM bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// GPU model string (for the SIMT model).
    pub gpu: String,
    /// GPU memory description.
    pub gpu_memory: String,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::table1()
    }
}

impl MachineConfig {
    /// The paper's Table I machine.
    pub fn table1() -> MachineConfig {
        MachineConfig {
            cpu: "Intel Xeon E3-1240 v5 (modelled)".into(),
            clock_ghz: 3.5,
            cores: 4,
            threads: 8,
            simd: "AVX2 (modelled as 16/8-lane batches)".into(),
            l1d: "4 x 32 KB, 8-way, 64 B lines".into(),
            l2: "4 x 256 KB, 4-way".into(),
            llc: "8 MB, 16-way, shared".into(),
            memory_bandwidth_gbps: 31.79,
            gpu: "Nvidia Titan Xp (SIMT model)".into(),
            gpu_memory: "12 GB GDDR5X (modelled)".into(),
        }
    }

    /// Renders the configuration as aligned `key: value` rows (the Table I
    /// reproduction).
    pub fn to_table(&self) -> String {
        let rows = [
            (
                "CPU",
                format!(
                    "{}, {} GHz, {} cores / {} threads, {}",
                    self.cpu, self.clock_ghz, self.cores, self.threads, self.simd
                ),
            ),
            ("L1D cache", self.l1d.clone()),
            ("L2 cache", self.l2.clone()),
            ("LLC", self.llc.clone()),
            (
                "Memory bandwidth",
                format!("{} GB/s", self.memory_bandwidth_gbps),
            ),
            ("GPU", format!("{}, {}", self.gpu, self.gpu_memory)),
        ];
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        rows.iter()
            .map(|(k, v)| format!("{k:width$}  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_mentions_all_parts() {
        let t = MachineConfig::table1().to_table();
        for needle in ["E3-1240", "32 KB", "256 KB", "8 MB", "31.79", "Titan Xp"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(MachineConfig::default(), MachineConfig::table1());
    }
}
