//! Export of microarchitectural counters into a
//! [`gb_obs::MetricsRegistry`], so one run manifest carries runtime
//! behaviour (latencies, utilization, throughput) and simulated hardware
//! behaviour (instruction mix, cache miss rates, top-down buckets) side
//! by side — the paper's characterization as a single machine-readable
//! artifact.

use crate::cache::CacheStats;
use crate::mix::InstructionMix;
use crate::topdown::TopDownReport;
use gb_obs::MetricsRegistry;

/// Writes the instruction-mix counters under `<prefix>.uarch.mix.*`.
pub fn export_mix(registry: &mut MetricsRegistry, prefix: &str, mix: &InstructionMix) {
    let c = |registry: &mut MetricsRegistry, name: &str, v: u64| {
        registry.counter_add(&format!("{prefix}.uarch.mix.{name}"), v);
    };
    c(registry, "loads", mix.loads);
    c(registry, "stores", mix.stores);
    c(registry, "int_ops", mix.int_ops);
    c(registry, "fp_ops", mix.fp_ops);
    c(registry, "simd_ops", mix.simd_ops);
    c(registry, "branches", mix.branches);
    c(registry, "branches_taken", mix.branches_taken);
    c(registry, "other", mix.other);
    c(registry, "total", mix.total());
}

/// Writes cache access/miss counters and miss-rate gauges under
/// `<prefix>.uarch.cache.*`.
pub fn export_cache(registry: &mut MetricsRegistry, prefix: &str, cache: &CacheStats) {
    let c = |registry: &mut MetricsRegistry, name: &str, v: u64| {
        registry.counter_add(&format!("{prefix}.uarch.cache.{name}"), v);
    };
    c(registry, "l1_accesses", cache.l1_accesses);
    c(registry, "l1_misses", cache.l1_misses);
    c(registry, "l2_accesses", cache.l2_accesses);
    c(registry, "l2_misses", cache.l2_misses);
    c(registry, "llc_accesses", cache.llc_accesses);
    c(registry, "llc_misses", cache.llc_misses);
    c(registry, "writebacks", cache.writebacks);
    c(registry, "dram_row_hits", cache.dram_row_hits);
    c(registry, "dram_row_misses", cache.dram_row_misses);
    c(registry, "tlb_accesses", cache.tlb_accesses);
    let g = |registry: &mut MetricsRegistry, name: &str, v: f64| {
        registry.set_gauge(&format!("{prefix}.uarch.cache.{name}"), v);
    };
    g(registry, "l1_miss_rate", cache.l1_miss_rate());
    g(registry, "l2_miss_rate", cache.l2_miss_rate());
    g(registry, "llc_miss_rate", cache.llc_miss_rate());
    g(registry, "dram_row_miss_rate", cache.row_miss_rate());
}

/// Writes the top-down slot fractions and derived rates under
/// `<prefix>.uarch.topdown.*`.
pub fn export_topdown(registry: &mut MetricsRegistry, prefix: &str, report: &TopDownReport) {
    let g = |registry: &mut MetricsRegistry, name: &str, v: f64| {
        registry.set_gauge(&format!("{prefix}.uarch.topdown.{name}"), v);
    };
    g(registry, "retiring", report.retiring);
    g(registry, "bad_speculation", report.bad_speculation);
    g(registry, "frontend_bound", report.frontend_bound);
    g(registry, "core_bound", report.core_bound);
    g(registry, "memory_bound", report.memory_bound);
    g(registry, "ipc", report.ipc);
    g(registry, "data_stall_fraction", report.data_stall_fraction);
}

/// Exports one kernel's full characterization (mix + cache + top-down +
/// BPKI) under `<prefix>.uarch.*`.
pub fn export_characterization(
    registry: &mut MetricsRegistry,
    prefix: &str,
    mix: &InstructionMix,
    cache: &CacheStats,
    topdown: &TopDownReport,
    bpki: f64,
) {
    export_mix(registry, prefix, mix);
    export_cache(registry, prefix, cache);
    export_topdown(registry, prefix, topdown);
    registry.set_gauge(&format!("{prefix}.uarch.bpki"), bpki);
}

/// Renders a sampled characterization as the compact one-line note
/// profile analytics attaches to a flamegraph frame:
/// `ipc 1.82 · l1 3.1% · llc 0.2% · bpki 4.6`.
///
/// Miss rates are percentages of the level's accesses; `bpki` is DRAM
/// bytes per kilo-instruction. The note rides in [`gb_obs::StageTree`]
/// annotations (self-times table), never in collapsed-stack output,
/// which stays pure `frames value` lines.
pub fn frame_annotation(cache: &CacheStats, topdown: &TopDownReport, bpki: f64) -> String {
    format!(
        "ipc {:.2} · l1 {:.1}% · llc {:.1}% · bpki {:.1}",
        topdown.ipc,
        cache.l1_miss_rate() * 100.0,
        cache.llc_miss_rate() * 100.0,
        bpki
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheProbe;
    use crate::probe::Probe;
    use crate::topdown::CoreModel;
    use serde_json::Value;

    #[test]
    fn characterization_lands_in_one_registry() {
        let data = vec![7u64; 2048];
        let mut probe = CacheProbe::skylake_like();
        for i in (0..data.len()).step_by(8) {
            probe.load(crate::probe::addr_of(&data[i]), 8);
            probe.int_ops(2);
            probe.branch(true);
        }
        let bpki = probe.bpki();
        let (mix, cache) = probe.into_parts();
        let td = CoreModel::default().analyze(&mix, &cache);

        let mut registry = MetricsRegistry::new();
        registry.counter_add("fmi.tasks", 50); // runtime metric coexists
        export_characterization(&mut registry, "fmi", &mix, &cache, &td, bpki);

        assert_eq!(registry.counter("fmi.uarch.mix.loads"), mix.loads);
        assert_eq!(
            registry.counter("fmi.uarch.cache.l1_accesses"),
            cache.l1_accesses
        );
        let j = registry.to_json();
        let gauges = j.get("gauges").and_then(Value::as_object).unwrap();
        for key in [
            "fmi.uarch.cache.l1_miss_rate",
            "fmi.uarch.topdown.retiring",
            "fmi.uarch.topdown.memory_bound",
            "fmi.uarch.bpki",
        ] {
            assert!(gauges.contains_key(key), "missing gauge {key}");
        }
        // Runtime and uarch counters share the document.
        let counters = j.get("counters").and_then(Value::as_object).unwrap();
        assert!(counters.contains_key("fmi.tasks"));
        assert!(counters.contains_key("fmi.uarch.mix.total"));
    }

    #[test]
    fn frame_annotation_is_one_line_and_carries_the_rates() {
        let data = vec![3u64; 512];
        let mut probe = CacheProbe::skylake_like();
        for (i, word) in data.iter().enumerate() {
            probe.load(crate::probe::addr_of(word), 8);
            probe.int_ops(1);
            probe.branch(i % 3 == 0);
        }
        let bpki = probe.bpki();
        let (mix, cache) = probe.into_parts();
        let td = CoreModel::default().analyze(&mix, &cache);
        let note = frame_annotation(&cache, &td, bpki);
        assert!(!note.contains('\n'));
        assert!(note.starts_with("ipc "), "note: {note}");
        assert!(
            note.contains("l1 ") && note.contains("bpki "),
            "note: {note}"
        );
    }
}
