//! # gb-uarch
//!
//! Microarchitectural characterization substrate for GenomicsBench-rs.
//!
//! The original paper characterizes its kernels with Intel VTune, the MICA
//! pintool and hardware performance counters. This crate replaces that
//! toolchain with simulation that runs *inside* the benchmark process:
//!
//! - [`probe`] — the instrumentation interface kernels are generic over
//!   (zero-cost [`probe::NullProbe`] on the timed path),
//! - [`mix`] — dynamic instruction-mix accounting (paper Fig. 5),
//! - [`cache`] — a trace-driven L1/L2/LLC + DRAM row-buffer simulator
//!   (paper Figs. 6 and 8),
//! - [`topdown`] — an analytic top-down pipeline-slot model
//!   (paper Figs. 8 and 9),
//! - [`working_set`] — distinct-lines/pages touched measurement,
//! - [`config`] — the modelled Table I machine,
//! - [`export`] — counter export into a [`gb_obs::MetricsRegistry`] so
//!   run manifests carry runtime and microarchitectural behaviour in
//!   one artifact.
//!
//! # Examples
//!
//! ```
//! use gb_uarch::{cache::CacheProbe, probe::Probe, topdown::CoreModel};
//!
//! // An "instrumented kernel": sum a strided array.
//! let data = vec![1u64; 4096];
//! let mut probe = CacheProbe::skylake_like();
//! let mut sum = 0u64;
//! for i in (0..data.len()).step_by(8) {
//!     probe.load(gb_uarch::probe::addr_of(&data[i]), 8);
//!     probe.int_ops(2);
//!     probe.branch(true);
//!     sum += data[i];
//! }
//! let (mix, stats) = probe.into_parts();
//! let report = CoreModel::default().analyze(&mix, &stats);
//! assert!(report.retiring > 0.0 && sum == 512);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod export;
pub mod mix;
pub mod probe;
pub mod topdown;
pub mod working_set;

pub use cache::{CacheProbe, CacheStats, Hierarchy};
pub use mix::{InstructionMix, MixProbe};
pub use probe::{NullProbe, Probe};
pub use topdown::{CoreModel, TopDownReport};
