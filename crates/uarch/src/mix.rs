//! Dynamic instruction-mix accounting (the suite's MICA-pintool stand-in,
//! behind Fig. 5 of the paper).

use crate::probe::Probe;
use serde::{Deserialize, Serialize};

/// Counts of dynamic operations by category.
///
/// Categories follow Fig. 5 of the paper: loads, stores, scalar integer,
/// vector (SIMD), floating point, branches, other.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Memory read instructions.
    pub loads: u64,
    /// Memory write instructions.
    pub stores: u64,
    /// Scalar integer ALU instructions.
    pub int_ops: u64,
    /// Scalar floating-point instructions.
    pub fp_ops: u64,
    /// SIMD/vector instructions.
    pub simd_ops: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Taken conditional branches.
    pub branches_taken: u64,
    /// Everything else (string, sync, system).
    pub other: u64,
}

impl InstructionMix {
    /// Total dynamic instruction count.
    pub fn total(&self) -> u64 {
        self.loads
            + self.stores
            + self.int_ops
            + self.fp_ops
            + self.simd_ops
            + self.branches
            + self.other
    }

    /// The mix as fractions of the total, in Fig. 5 category order:
    /// `[loads, stores, int, simd, fp, branches, other]`.
    ///
    /// Returns all zeros for an empty mix.
    pub fn fractions(&self) -> [f64; 7] {
        let t = self.total();
        if t == 0 {
            return [0.0; 7];
        }
        let t = t as f64;
        [
            self.loads as f64 / t,
            self.stores as f64 / t,
            self.int_ops as f64 / t,
            self.simd_ops as f64 / t,
            self.fp_ops as f64 / t,
            self.branches as f64 / t,
            self.other as f64 / t,
        ]
    }

    /// Fraction of conditional branches that were taken (0 when there were
    /// no branches).
    pub fn taken_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branches_taken as f64 / self.branches as f64
        }
    }

    /// Element-wise sum with another mix (for aggregating per-task runs).
    pub fn merge(&mut self, other: &InstructionMix) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.int_ops += other.int_ops;
        self.fp_ops += other.fp_ops;
        self.simd_ops += other.simd_ops;
        self.branches += other.branches;
        self.branches_taken += other.branches_taken;
        self.other += other.other;
    }
}

/// A [`Probe`] that records an [`InstructionMix`].
///
/// # Examples
///
/// ```
/// use gb_uarch::{mix::MixProbe, probe::Probe};
/// let mut p = MixProbe::new();
/// p.int_ops(3);
/// p.load(0x100, 8);
/// p.branch(true);
/// let m = p.into_mix();
/// assert_eq!(m.total(), 5);
/// assert_eq!(m.branches_taken, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MixProbe {
    mix: InstructionMix,
}

impl MixProbe {
    /// Creates an empty recorder.
    pub fn new() -> MixProbe {
        MixProbe::default()
    }

    /// The mix recorded so far.
    pub fn mix(&self) -> &InstructionMix {
        &self.mix
    }

    /// Consumes the probe and returns the recorded mix.
    pub fn into_mix(self) -> InstructionMix {
        self.mix
    }
}

impl Probe for MixProbe {
    #[inline]
    fn load(&mut self, _addr: u64, _bytes: u32) {
        self.mix.loads += 1;
    }

    #[inline]
    fn store(&mut self, _addr: u64, _bytes: u32) {
        self.mix.stores += 1;
    }

    #[inline]
    fn int_ops(&mut self, n: u64) {
        self.mix.int_ops += n;
    }

    #[inline]
    fn fp_ops(&mut self, n: u64) {
        self.mix.fp_ops += n;
    }

    #[inline]
    fn simd_ops(&mut self, n: u64) {
        self.mix.simd_ops += n;
    }

    #[inline]
    fn branch(&mut self, taken: bool) {
        self.mix.branches += 1;
        self.mix.branches_taken += u64::from(taken);
    }

    #[inline]
    fn other_ops(&mut self, n: u64) {
        self.mix.other += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let mut p = MixProbe::new();
        p.load(0, 4);
        p.store(0, 4);
        p.int_ops(5);
        p.fp_ops(2);
        p.simd_ops(1);
        p.branch(false);
        p.other_ops(1);
        let f = p.mix().fractions();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mix_is_zero() {
        let m = InstructionMix::default();
        assert_eq!(m.total(), 0);
        assert_eq!(m.fractions(), [0.0; 7]);
        assert_eq!(m.taken_ratio(), 0.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = InstructionMix {
            loads: 1,
            branches: 2,
            branches_taken: 1,
            ..Default::default()
        };
        let b = InstructionMix {
            loads: 3,
            int_ops: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.loads, 4);
        assert_eq!(a.int_ops, 4);
        assert_eq!(a.total(), 10);
        assert!((a.taken_ratio() - 0.5).abs() < 1e-12);
    }
}
