//! Instrumentation probes.
//!
//! GenomicsBench characterizes its kernels with a binary-instrumentation
//! pintool (MICA) and hardware performance counters. This environment has
//! neither, so the suite compiles the instrumentation *into* the kernels:
//! every kernel is generic over a [`Probe`] and reports its dynamic
//! operations (loads, stores, scalar/vector/float ALU ops, branches) at the
//! points where the corresponding machine operations would occur.
//!
//! With [`NullProbe`] every probe call is an empty inlined function, so the
//! timed benchmark path pays nothing. With a recording probe
//! ([`crate::mix::MixProbe`], [`crate::cache::CacheProbe`]) the same kernel
//! run yields the instruction mix of Fig. 5 and feeds the cache simulator
//! behind Figs. 6/8/9.
//!
//! Addresses passed to `load`/`store` are real heap addresses of the
//! kernel's data structures (obtained from references via pointer casts —
//! no unsafe code), so spatial locality seen by the cache simulator is the
//! locality of the actual Rust data layout.

/// Sink for the dynamic operation stream of an instrumented kernel.
///
/// The default methods make every event optional: a probe interested only
/// in memory traffic overrides `load`/`store` and ignores the rest.
pub trait Probe {
    /// A memory read of `bytes` bytes at virtual address `addr`.
    #[inline(always)]
    fn load(&mut self, addr: u64, bytes: u32) {
        let _ = (addr, bytes);
    }

    /// A memory write of `bytes` bytes at virtual address `addr`.
    #[inline(always)]
    fn store(&mut self, addr: u64, bytes: u32) {
        let _ = (addr, bytes);
    }

    /// `n` scalar integer ALU operations.
    #[inline(always)]
    fn int_ops(&mut self, n: u64) {
        let _ = n;
    }

    /// `n` scalar floating-point operations.
    #[inline(always)]
    fn fp_ops(&mut self, n: u64) {
        let _ = n;
    }

    /// `n` SIMD/vector operations (one event per *vector* instruction, not
    /// per lane).
    #[inline(always)]
    fn simd_ops(&mut self, n: u64) {
        let _ = n;
    }

    /// A conditional branch; `taken` is its outcome.
    #[inline(always)]
    fn branch(&mut self, taken: bool) {
        let _ = taken;
    }

    /// `n` operations outside the other categories (string ops, sync,
    /// system interaction) — the paper's "Other" bucket.
    #[inline(always)]
    fn other_ops(&mut self, n: u64) {
        let _ = n;
    }
}

/// The do-nothing probe used on the timed path.
///
/// # Examples
///
/// ```
/// use gb_uarch::probe::{NullProbe, Probe};
/// let mut p = NullProbe;
/// p.load(0x1000, 8); // compiles to nothing
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Returns the virtual address of a referenced value, for feeding
/// [`Probe::load`]/[`Probe::store`].
///
/// # Examples
///
/// ```
/// use gb_uarch::probe::addr_of;
/// let v = vec![1u32, 2, 3];
/// assert_eq!(addr_of(&v[1]) - addr_of(&v[0]), 4);
/// ```
#[inline(always)]
pub fn addr_of<T>(r: &T) -> u64 {
    r as *const T as u64
}

/// Chains two probes so one instrumented run can feed several collectors.
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Probe, B: Probe> Probe for Tee<A, B> {
    #[inline(always)]
    fn load(&mut self, addr: u64, bytes: u32) {
        self.0.load(addr, bytes);
        self.1.load(addr, bytes);
    }

    #[inline(always)]
    fn store(&mut self, addr: u64, bytes: u32) {
        self.0.store(addr, bytes);
        self.1.store(addr, bytes);
    }

    #[inline(always)]
    fn int_ops(&mut self, n: u64) {
        self.0.int_ops(n);
        self.1.int_ops(n);
    }

    #[inline(always)]
    fn fp_ops(&mut self, n: u64) {
        self.0.fp_ops(n);
        self.1.fp_ops(n);
    }

    #[inline(always)]
    fn simd_ops(&mut self, n: u64) {
        self.0.simd_ops(n);
        self.1.simd_ops(n);
    }

    #[inline(always)]
    fn branch(&mut self, taken: bool) {
        self.0.branch(taken);
        self.1.branch(taken);
    }

    #[inline(always)]
    fn other_ops(&mut self, n: u64) {
        self.0.other_ops(n);
        self.1.other_ops(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CountLoads(u64);

    impl Probe for CountLoads {
        fn load(&mut self, _addr: u64, _bytes: u32) {
            self.0 += 1;
        }
    }

    #[test]
    fn default_methods_are_noops() {
        let mut p = CountLoads::default();
        p.store(0, 8);
        p.int_ops(5);
        p.branch(true);
        assert_eq!(p.0, 0);
        p.load(0, 8);
        assert_eq!(p.0, 1);
    }

    #[test]
    fn tee_fans_out() {
        let mut t = Tee(CountLoads::default(), CountLoads::default());
        t.load(0x10, 4);
        t.load(0x20, 4);
        assert_eq!(t.0 .0, 2);
        assert_eq!(t.1 .0, 2);
    }

    #[test]
    fn addr_of_is_monotonic_within_vec() {
        let v = [0u64; 4];
        assert_eq!(addr_of(&v[3]) - addr_of(&v[0]), 24);
    }
}
