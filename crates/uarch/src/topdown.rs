//! First-order top-down bottleneck analysis (Fig. 9 of the paper) and the
//! data-stall estimate behind Fig. 8.
//!
//! The paper uses Intel's top-down methodology (Yasin, ISPASS 2014) via
//! VTune. Without hardware counters, this module computes the same
//! four-way pipeline-slot breakdown from an analytic out-of-order core
//! model driven by the *measured* dynamic instruction mix and the
//! *simulated* cache behaviour of each kernel:
//!
//! - **Retiring** — slots that retired useful uops,
//! - **Bad speculation** — slots lost to branch mispredicts,
//! - **Front-end bound** — fetch/decode bubbles (modelled as a small
//!   constant tax; the suite's kernels are loop-dominated),
//! - **Back-end core bound** — execution-port pressure beyond issue width,
//! - **Back-end memory bound** — stalls waiting for data.
//!
//! The model is deliberately first-order: it is meant to reproduce the
//! *shape* of Fig. 9 (which kernels are memory- vs compute-bound), not
//! absolute slot counts of a specific Skylake part.

use crate::cache::CacheStats;
use crate::mix::InstructionMix;
use serde::{Deserialize, Serialize};

/// Parameters of the analytic core model.
///
/// Defaults approximate the paper's Xeon E3-1240 v5 (Skylake client).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreModel {
    /// Pipeline issue/retire width (slots per cycle).
    pub width: f64,
    /// Load ports.
    pub load_ports: f64,
    /// Store ports.
    pub store_ports: f64,
    /// Ports usable by scalar integer ALU ops.
    pub int_ports: f64,
    /// Ports usable by FP/SIMD ops.
    pub vec_ports: f64,
    /// Extra latency (cycles) of an L1 miss that hits L2.
    pub l2_latency: f64,
    /// Extra latency of an L2 miss that hits LLC.
    pub llc_latency: f64,
    /// Extra latency of an LLC miss served by DRAM with the row open.
    pub dram_row_hit_latency: f64,
    /// Extra latency when the access must also open a new DRAM row.
    pub dram_row_miss_latency: f64,
    /// Memory-level parallelism: how many outstanding misses overlap.
    /// Pointer-chasing kernels (fmi) have ~1–2; batched independent
    /// lookups can sustain more.
    pub mlp: f64,
    /// Branch mispredict rate applied to the kernel's conditional
    /// branches.
    pub mispredict_rate: f64,
    /// Cycles lost per mispredict.
    pub mispredict_penalty: f64,
    /// Front-end bubble tax as a fraction of execution cycles.
    pub frontend_tax: f64,
    /// Residual exposed latency (cycles) of a *prefetchable* (sequential)
    /// miss at each level — the stride prefetcher hides most but not all
    /// of it, and DRAM streams remain bandwidth-limited.
    pub prefetched_l2_latency: f64,
    /// See [`CoreModel::prefetched_l2_latency`].
    pub prefetched_llc_latency: f64,
    /// See [`CoreModel::prefetched_l2_latency`].
    pub prefetched_dram_latency: f64,
    /// Cycles per DTLB-miss page walk (mostly overlapped; exposed part).
    pub tlb_walk_latency: f64,
}

impl Default for CoreModel {
    fn default() -> CoreModel {
        CoreModel {
            width: 4.0,
            load_ports: 2.0,
            store_ports: 1.0,
            int_ports: 3.0,
            vec_ports: 2.0,
            l2_latency: 4.0,
            llc_latency: 36.0,
            dram_row_hit_latency: 170.0,
            dram_row_miss_latency: 250.0,
            mlp: 2.0,
            mispredict_rate: 0.02,
            mispredict_penalty: 15.0,
            frontend_tax: 0.03,
            prefetched_l2_latency: 1.0,
            prefetched_llc_latency: 3.0,
            prefetched_dram_latency: 25.0,
            tlb_walk_latency: 12.0,
        }
    }
}

impl CoreModel {
    /// A model variant with an explicit memory-level-parallelism estimate.
    pub fn with_mlp(mlp: f64) -> CoreModel {
        CoreModel {
            mlp: mlp.max(1.0),
            ..CoreModel::default()
        }
    }

    /// Runs the analytic model over one kernel's measured mix and cache
    /// behaviour.
    pub fn analyze(&self, mix: &InstructionMix, cache: &CacheStats) -> TopDownReport {
        let n = mix.total() as f64;
        if n == 0.0 {
            return TopDownReport::default();
        }

        // Execution cycles: the binding structural resource.
        let issue = n / self.width;
        let load_cy = mix.loads as f64 / self.load_ports;
        let store_cy = mix.stores as f64 / self.store_ports;
        let vec_cy = (mix.fp_ops + mix.simd_ops) as f64 / self.vec_ports;
        let int_cy = mix.int_ops as f64 / self.int_ports;
        let exec = issue.max(load_cy).max(store_cy).max(vec_cy).max(int_cy);

        // Memory stall cycles from the simulated hierarchy: sequential
        // (prefetchable) misses pay only a residual latency, the rest pay
        // the full latency; everything is overlapped by the kernel's MLP.
        let l2_hits = cache.l1_misses.saturating_sub(cache.l2_misses) as f64;
        let l2_hits_seq =
            (cache.l1_seq_misses.saturating_sub(cache.l2_seq_misses) as f64).min(l2_hits);
        let llc_hits = cache.l2_misses.saturating_sub(cache.llc_misses) as f64;
        let llc_hits_seq =
            (cache.l2_seq_misses.saturating_sub(cache.llc_seq_misses) as f64).min(llc_hits);
        let dram_total = cache.llc_misses as f64;
        let dram_seq = (cache.llc_seq_misses as f64).min(dram_total);
        let dram_demand = dram_total - dram_seq;
        let row_miss_frac = cache.row_miss_rate();
        let dram_lat = self.dram_row_hit_latency * (1.0 - row_miss_frac)
            + self.dram_row_miss_latency * row_miss_frac;
        let tlb_stall = cache.tlb_misses as f64 * self.tlb_walk_latency;
        let raw_stall = tlb_stall
            + (l2_hits - l2_hits_seq) * self.l2_latency
            + l2_hits_seq * self.prefetched_l2_latency
            + (llc_hits - llc_hits_seq) * self.llc_latency
            + llc_hits_seq * self.prefetched_llc_latency
            + dram_demand * dram_lat
            + dram_seq * self.prefetched_dram_latency;
        let mem_stall = raw_stall / self.mlp.max(1.0);

        let bad_spec = mix.branches as f64 * self.mispredict_rate * self.mispredict_penalty;
        let frontend = exec * self.frontend_tax;

        let cycles = exec + mem_stall + bad_spec + frontend;
        let slots = cycles * self.width;

        let retiring = (n / slots).min(1.0);
        let memory_bound = mem_stall * self.width / slots;
        let bad_speculation = bad_spec * self.width / slots;
        let frontend_bound = frontend * self.width / slots;
        let core_bound =
            (1.0 - retiring - memory_bound - bad_speculation - frontend_bound).max(0.0);

        TopDownReport {
            retiring,
            bad_speculation,
            frontend_bound,
            core_bound,
            memory_bound,
            cycles,
            ipc: n / cycles,
            data_stall_fraction: mem_stall / cycles,
        }
    }
}

/// Output of the top-down analysis for one kernel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TopDownReport {
    /// Fraction of pipeline slots retiring useful work.
    pub retiring: f64,
    /// Fraction lost to branch mispredicts.
    pub bad_speculation: f64,
    /// Fraction lost to front-end bubbles.
    pub frontend_bound: f64,
    /// Fraction lost to execution-port pressure.
    pub core_bound: f64,
    /// Fraction lost waiting for data.
    pub memory_bound: f64,
    /// Modelled total cycles.
    pub cycles: f64,
    /// Modelled instructions per cycle.
    pub ipc: f64,
    /// Fraction of cycles stalled on data (Fig. 8's right axis).
    pub data_stall_fraction: f64,
}

impl TopDownReport {
    /// The four+1 slot fractions, which always sum to ~1 for a non-empty
    /// run.
    pub fn fractions(&self) -> [f64; 5] {
        [
            self.retiring,
            self.bad_speculation,
            self.frontend_bound,
            self.core_bound,
            self.memory_bound,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(loads: u64, stores: u64, int: u64, fp: u64, simd: u64, br: u64) -> InstructionMix {
        InstructionMix {
            loads,
            stores,
            int_ops: int,
            fp_ops: fp,
            simd_ops: simd,
            branches: br,
            branches_taken: br / 2,
            other: 0,
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = mix(100, 50, 300, 10, 40, 80);
        let c = CacheStats {
            l1_accesses: 150,
            l1_misses: 20,
            l2_accesses: 20,
            l2_misses: 10,
            llc_accesses: 10,
            llc_misses: 5,
            dram_row_misses: 4,
            dram_row_hits: 1,
            ..Default::default()
        };
        let r = CoreModel::default().analyze(&m, &c);
        let sum: f64 = r.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn compute_kernel_is_retiring_dominated() {
        // grm-like: balanced mix saturating issue width, perfect cache
        // behaviour — should retire close to 90% of slots like the paper's
        // grm (87.7%).
        let m = mix(200, 50, 300, 0, 300, 100);
        let c = CacheStats {
            l1_accesses: 250,
            l1_misses: 2,
            l2_accesses: 2,
            l2_misses: 0,
            ..Default::default()
        };
        let r = CoreModel::default().analyze(&m, &c);
        assert!(r.retiring > 0.8, "retiring = {}", r.retiring);
        assert!(r.memory_bound < 0.1);
    }

    #[test]
    fn pointer_chase_is_memory_bound() {
        // fmi-like: every load misses to DRAM, serial (MLP 1).
        let m = mix(1000, 0, 2000, 0, 0, 500);
        let c = CacheStats {
            l1_accesses: 1000,
            l1_misses: 900,
            l2_accesses: 900,
            l2_misses: 850,
            llc_accesses: 850,
            llc_misses: 800,
            dram_row_misses: 700,
            dram_row_hits: 100,
            ..Default::default()
        };
        let r = CoreModel::with_mlp(1.5).analyze(&m, &c);
        assert!(r.memory_bound > 0.5, "memory_bound = {}", r.memory_bound);
        assert!(r.memory_bound > r.retiring);
        assert!(r.data_stall_fraction > 0.5);
    }

    #[test]
    fn empty_run_is_all_zero() {
        let r = CoreModel::default().analyze(&InstructionMix::default(), &CacheStats::default());
        assert_eq!(r.fractions(), [0.0; 5]);
    }

    #[test]
    fn higher_mlp_reduces_memory_bound() {
        let m = mix(1000, 0, 1000, 0, 0, 100);
        let c = CacheStats {
            l1_accesses: 1000,
            l1_misses: 500,
            l2_accesses: 500,
            l2_misses: 400,
            llc_accesses: 400,
            llc_misses: 300,
            dram_row_misses: 250,
            dram_row_hits: 50,
            ..Default::default()
        };
        let low = CoreModel::with_mlp(1.0).analyze(&m, &c);
        let high = CoreModel::with_mlp(8.0).analyze(&m, &c);
        assert!(high.memory_bound < low.memory_bound);
        assert!(high.ipc > low.ipc);
    }
}
