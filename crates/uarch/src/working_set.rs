//! Working-set measurement.
//!
//! The paper explains the memory-bound kernels by their working sets
//! (~10 GB FM-index, ~8 GB k-mer table vs an 8 MB LLC). This probe
//! measures a kernel's *touched* working set directly: the number of
//! distinct cache lines (and 4 KiB pages) its load/store stream visits.

use crate::probe::Probe;
use std::collections::HashSet;

/// A [`Probe`] recording the set of distinct lines and pages touched.
///
/// # Examples
///
/// ```
/// use gb_uarch::{probe::Probe, working_set::WorkingSetProbe};
/// let mut p = WorkingSetProbe::new();
/// p.load(0, 8);
/// p.load(8, 8);    // same line
/// p.load(64, 8);   // next line, same page
/// p.store(4096, 8); // new page
/// assert_eq!(p.lines(), 3);
/// assert_eq!(p.pages(), 2);
/// assert_eq!(p.bytes(), 3 * 64);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WorkingSetProbe {
    lines: HashSet<u64>,
    pages: HashSet<u64>,
}

impl WorkingSetProbe {
    /// Creates an empty recorder.
    pub fn new() -> WorkingSetProbe {
        WorkingSetProbe::default()
    }

    /// Distinct 64-byte cache lines touched.
    pub fn lines(&self) -> usize {
        self.lines.len()
    }

    /// Distinct 4 KiB pages touched.
    pub fn pages(&self) -> usize {
        self.pages.len()
    }

    /// Working set in bytes (lines x 64).
    pub fn bytes(&self) -> usize {
        self.lines.len() * 64
    }

    fn touch(&mut self, addr: u64, bytes: u32) {
        let first = addr / 64;
        let last = (addr + u64::from(bytes.max(1)) - 1) / 64;
        for line in first..=last {
            self.lines.insert(line);
            self.pages.insert(line / 64); // 64 lines per 4 KiB page
        }
    }
}

impl Probe for WorkingSetProbe {
    #[inline]
    fn load(&mut self, addr: u64, bytes: u32) {
        self.touch(addr, bytes);
    }

    #[inline]
    fn store(&mut self, addr: u64, bytes: u32) {
        self.touch(addr, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_lines_counted_once() {
        let mut p = WorkingSetProbe::new();
        for _ in 0..100 {
            p.load(128, 8);
        }
        assert_eq!(p.lines(), 1);
        assert_eq!(p.pages(), 1);
    }

    #[test]
    fn spanning_access_touches_multiple_lines() {
        let mut p = WorkingSetProbe::new();
        p.load(60, 16); // crosses a line boundary
        assert_eq!(p.lines(), 2);
    }

    #[test]
    fn streaming_counts_every_line() {
        let mut p = WorkingSetProbe::new();
        for i in 0..1000u64 {
            p.store(i * 64, 8);
        }
        assert_eq!(p.lines(), 1000);
        assert_eq!(p.bytes(), 64_000);
        assert_eq!(p.pages(), 1000 / 64 + 1);
    }

    #[test]
    fn random_lookups_touch_the_whole_table() {
        // Occ-style random touches over an index-sized table reach a
        // working set on the order of the table — the paper's core
        // observation about fmi/kmer-cnt.
        let table = vec![0u8; 400_000];
        let mut p = WorkingSetProbe::new();
        let mut x = 1u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let idx = (x >> 33) as usize % table.len();
            p.load(crate::probe::addr_of(&table[idx]), 16);
        }
        assert!(p.bytes() > 300_000, "working set only {} bytes", p.bytes());
    }
}
