//! Property-based tests for the characterization substrate.

use gb_uarch::cache::{CacheGeometry, Hierarchy};
use gb_uarch::mix::InstructionMix;
use gb_uarch::topdown::CoreModel;
use proptest::prelude::*;

fn tiny_hierarchy() -> Hierarchy {
    Hierarchy::new(
        CacheGeometry {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
        },
        CacheGeometry {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 64,
        },
        CacheGeometry {
            size_bytes: 4096,
            assoc: 4,
            line_bytes: 64,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn immediate_rereference_always_hits(addrs in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut h = tiny_hierarchy();
        for a in addrs {
            h.load(a, 4);
            let before = h.stats().l1_misses;
            h.load(a, 4); // same address immediately after: must hit L1
            prop_assert_eq!(h.stats().l1_misses, before);
        }
    }

    #[test]
    fn miss_counts_are_monotone_down_the_hierarchy(
        addrs in proptest::collection::vec((0u64..1_000_000, 1u32..64), 1..500),
        writes in proptest::collection::vec(proptest::bool::ANY, 500),
    ) {
        let mut h = tiny_hierarchy();
        for ((a, b), w) in addrs.into_iter().zip(writes) {
            if w {
                h.store(a, b);
            } else {
                h.load(a, b);
            }
        }
        let s = h.stats();
        prop_assert!(s.l1_misses <= s.l1_accesses);
        prop_assert_eq!(s.l2_accesses, s.l1_misses);
        prop_assert!(s.l2_misses <= s.l2_accesses);
        prop_assert_eq!(s.llc_accesses, s.l2_misses);
        prop_assert!(s.llc_misses <= s.llc_accesses);
        prop_assert!(s.l1_seq_misses <= s.l1_misses);
        prop_assert!(s.l2_seq_misses <= s.l2_misses);
        prop_assert!(s.llc_seq_misses <= s.llc_misses);
        prop_assert_eq!(s.dram_row_hits + s.dram_row_misses, s.llc_misses);
    }

    #[test]
    fn topdown_fractions_always_sum_to_one(
        loads in 0u64..10_000, stores in 0u64..10_000, ints in 0u64..10_000,
        fps in 0u64..10_000, simds in 0u64..10_000, brs in 0u64..10_000,
        l1m in 0u64..5_000, mlp in 1u32..16,
    ) {
        let mix = InstructionMix {
            loads, stores, int_ops: ints, fp_ops: fps, simd_ops: simds,
            branches: brs, branches_taken: brs / 2, other: 0,
        };
        prop_assume!(mix.total() > 0);
        let l1m = l1m.min(loads + stores);
        let cache = gb_uarch::cache::CacheStats {
            l1_accesses: loads + stores,
            l1_misses: l1m,
            l2_accesses: l1m,
            l2_misses: l1m / 2,
            llc_accesses: l1m / 2,
            llc_misses: l1m / 4,
            dram_row_hits: l1m / 8,
            dram_row_misses: l1m / 4 - l1m / 8,
            ..Default::default()
        };
        let r = CoreModel::with_mlp(f64::from(mlp)).analyze(&mix, &cache);
        let sum: f64 = r.fractions().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        prop_assert!(r.fractions().iter().all(|&f| (-1e-9..=1.0).contains(&f)));
        prop_assert!(r.ipc > 0.0 && r.ipc <= 4.0 + 1e-9);
    }

    #[test]
    fn streaming_misses_are_classified_sequential(n in 10u64..300) {
        let mut h = tiny_hierarchy();
        for i in 0..n {
            h.load(i * 64, 8);
        }
        let s = h.stats();
        // All but the stream's first miss continue a sequential run.
        prop_assert!(s.l1_seq_misses >= s.l1_misses - 1);
    }
}
