//! The reachability rules behind `cargo xtask analyze`.
//!
//! Where `cargo xtask lint` checks tokens line-by-line, the analyzer
//! reasons about *reachability* over the workspace call graph
//! ([`crate::callgraph`]) built from the parsed function items
//! ([`crate::parse`]). Three rules gate CI; one report is informational:
//!
//! * **panic-freedom** — every function reachable from a kernel entry
//!   point (`run_task` / `instantiate` in `crates/suite/src/kernels/`)
//!   that contains a potential panic site (`.unwrap()`, `.expect()`,
//!   panicking macros, slice indexing) must carry a function-level
//!   `PANIC-FREE:` justification comment. The bar is deliberately the
//!   SAFETY-comment bar: panics in the measured path are allowed only
//!   with a written argument for why they cannot fire.
//! * **hot-alloc** — functions marked as `xtask: hot` steady-state
//!   loops must not transitively allocate (`Vec::new`, `.push(..)`,
//!   `.collect()`, `.to_vec()`, `.clone()`, `Box::new`, `format!`, …).
//!   Traversal stops at `prepare*`/`instantiate*`/`build_*` functions
//!   (setup is allowed to allocate) and at functions carrying an
//!   `ALLOC-OK:` justification.
//! * **float-determinism** — for each scalar/SIMD engine pair the two
//!   sides' *exclusive* reachable sets (shared helpers are by
//!   construction identical code and cancel out) must agree on float
//!   expression shape: `mul_add` on one side only, a float reduction on
//!   one side only, or one-sided `as f32`/`as f64` casts all break the
//!   bit-identity contract the differential tests enforce. Sites known
//!   to be benign carry a `FLOAT-DET:` comment on the line or within
//!   two lines above.
//! * **dead-pub** (report, never gates) — `pub fn`s with no
//!   in-workspace callers, including harness callers. Functions used
//!   only as bare paths (function pointers) are listed too: the parser
//!   only sees `name(..)` call syntax — a documented limit.

use crate::callgraph::{self, CallGraph};
use crate::lints::Violation;
use crate::parse::{parse_workspace, CallKind, FnItem, MarkerKind};
use crate::workspace::Workspace;
use std::collections::HashSet;

/// One scalar/SIMD engine pair under the float-determinism rule; the
/// entry functions are resolved by name over the parsed workspace.
#[derive(Debug, Clone, Copy)]
pub struct EnginePair {
    /// Kernel name, for messages.
    pub name: &'static str,
    /// The scalar engine's entry function.
    pub scalar_entry: &'static str,
    /// The SIMD engine's entry function (the fill itself, not the
    /// dispatch wrapper, so the scalar retire path is not on this side).
    pub simd_entry: &'static str,
}

/// The suite's scalar/SIMD pairs (bit-identity enforced by the
/// differential proptests; this rule catches the *source* divergences).
pub const ENGINE_PAIRS: &[EnginePair] = &[
    EnginePair {
        name: "bsw",
        scalar_entry: "banded_sw_probed",
        simd_entry: "simd_group_probed",
    },
    EnginePair {
        name: "phmm",
        scalar_entry: "forward_likelihood_probed",
        simd_entry: "wavefront_likelihood_probed",
    },
    EnginePair {
        name: "spoa",
        scalar_entry: "align_to_graph_probed",
        simd_entry: "align_i16",
    },
    EnginePair {
        name: "abea",
        scalar_entry: "align_events_probed",
        simd_entry: "align_events_simd_probed",
    },
];

/// Runs every analyze rule; an empty result means the workspace passes.
pub fn run_all(ws: &Workspace) -> Vec<Violation> {
    let fns = parse_workspace(ws);
    let cg = callgraph::build(&fns);
    let mut v = panic_freedom(&cg);
    v.extend(hot_alloc(&cg));
    v.extend(float_determinism(ws, &cg, ENGINE_PAIRS));
    v.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    v
}

/// Number of parsed functions and call edges, for the status line.
pub fn graph_stats(ws: &Workspace) -> (usize, usize) {
    let fns = parse_workspace(ws);
    let cg = callgraph::build(&fns);
    let edges = cg.edges.iter().map(Vec::len).sum();
    (fns.len(), edges)
}

/// Formats up to four sites for a message.
fn site_list(sites: &[(usize, &str)]) -> String {
    let mut parts: Vec<String> = sites
        .iter()
        .take(4)
        .map(|(line, what)| format!("{what} at line {line}"))
        .collect();
    if sites.len() > 4 {
        parts.push(format!("… {} more", sites.len() - 4));
    }
    parts.join(", ")
}

// --- panic-freedom -----------------------------------------------------

/// Kernel entry points: `run_task` / `instantiate` in the suite's
/// kernel modules (the DP-engine entries are reached through them).
fn kernel_roots(cg: &CallGraph<'_>) -> Vec<usize> {
    cg.find(|f| {
        !f.harness
            && f.file.starts_with("crates/suite/src/kernels/")
            && (f.name == "run_task" || f.name == "instantiate")
    })
}

/// Rule: every function reachable from a kernel entry point that has
/// panic sites needs a function-level `PANIC-FREE:` justification.
pub fn panic_freedom(cg: &CallGraph<'_>) -> Vec<Violation> {
    let roots = kernel_roots(cg);
    let reachable = cg.reachable(&roots, |f| f.harness);
    let mut out = Vec::new();
    for &i in &reachable {
        let f = &cg.fns[i];
        if f.panic_sites.is_empty() || f.has_marker(MarkerKind::PanicFree) {
            continue;
        }
        let sites: Vec<(usize, &str)> = f
            .panic_sites
            .iter()
            .map(|s| (s.line, s.what.as_str()))
            .collect();
        out.push(Violation {
            rule: "panic-freedom",
            file: f.file.clone(),
            line: f.line,
            msg: format!(
                "`{}` is reachable from a kernel entry point and can panic ({}); \
                 make it panic-free or justify with a function-level \
                 `// PANIC-FREE: <why>` comment",
                f.name,
                site_list(&sites)
            ),
        });
    }
    out
}

// --- hot-alloc ---------------------------------------------------------

/// Method calls that allocate (or may reallocate) their receiver.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "extend",
    "reserve",
    "resize",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "append",
    "split_off",
    "with_capacity",
];

/// Path roots whose constructors allocate.
const ALLOC_QUALIFIERS: &[&str] = &[
    "Vec", "Box", "String", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];

/// Allocating constructor names under [`ALLOC_QUALIFIERS`].
const ALLOC_CTORS: &[&str] = &["new", "from", "with_capacity", "from_iter"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Allocation sites of one function, as `(line, what)` pairs.
fn alloc_sites(f: &FnItem) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for c in &f.calls {
        match c.kind {
            CallKind::Method if ALLOC_METHODS.contains(&c.name.as_str()) => {
                out.push((c.line, format!(".{}()", c.name)));
            }
            CallKind::PathCall
                if ALLOC_CTORS.contains(&c.name.as_str())
                    && c.qualifier
                        .as_deref()
                        .is_some_and(|q| ALLOC_QUALIFIERS.contains(&q)) =>
            {
                out.push((
                    c.line,
                    format!("{}::{}", c.qualifier.as_deref().unwrap_or(""), c.name),
                ));
            }
            CallKind::Macro if ALLOC_MACROS.contains(&c.name.as_str()) => {
                out.push((c.line, format!("{}!", c.name)));
            }
            _ => {}
        }
    }
    out
}

/// Whether the hot-alloc traversal must not descend into `f`: setup
/// functions are allowed to allocate, and `ALLOC-OK:` is the written
/// justification for everything else.
fn alloc_exempt(f: &FnItem) -> bool {
    f.name.starts_with("prepare")
        || f.name.starts_with("instantiate")
        || f.name.starts_with("build_")
        || f.has_marker(MarkerKind::AllocOk)
}

/// Rule: functions marked as hot loops must not transitively allocate.
pub fn hot_alloc(cg: &CallGraph<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut reported: HashSet<usize> = HashSet::new();
    for root in cg.find(|f| !f.harness && f.has_marker(MarkerKind::Hot)) {
        let reach = cg.reachable(&[root], |f| f.harness || alloc_exempt(f));
        for i in reach {
            let f = &cg.fns[i];
            if alloc_exempt(f) || !reported.insert(i) {
                continue;
            }
            let sites = alloc_sites(f);
            if sites.is_empty() {
                continue;
            }
            let listed: Vec<(usize, &str)> = sites.iter().map(|(l, w)| (*l, w.as_str())).collect();
            out.push(Violation {
                rule: "hot-alloc",
                file: f.file.clone(),
                line: f.line,
                msg: format!(
                    "`{}` allocates ({}) and is reachable from the hot loop `{}`; \
                     hoist the allocation into prepare/instantiate or justify with \
                     a function-level `// ALLOC-OK: <why>` comment",
                    f.name,
                    site_list(&listed),
                    cg.fns[root].name,
                ),
            });
        }
    }
    out
}

// --- float-determinism -------------------------------------------------

/// Is the float feature at `file:line` justified by a `FLOAT-DET:`
/// comment — trailing on the line itself, or anywhere in the contiguous
/// comment block directly above it?
fn float_justified(ws: &Workspace, file: &str, line: usize) -> bool {
    let Some(f) = ws.get(file) else {
        return false;
    };
    let sh = f.shadows();
    let comments = sh.comment_lines();
    let code = sh.code_lines();
    if comments
        .get(line - 1)
        .is_some_and(|c| c.contains("FLOAT-DET:"))
    {
        return true;
    }
    let mut i = line - 1; // 0-based index of the site line
    while i > 0 {
        i -= 1;
        let comment_only = code.get(i).is_some_and(|c| c.trim().is_empty())
            && comments.get(i).is_some_and(|c| !c.trim().is_empty());
        if !comment_only {
            return false;
        }
        if comments[i].contains("FLOAT-DET:") {
            return true;
        }
    }
    false
}

/// One side's exclusive float feature sites, by class.
#[derive(Default)]
struct SideProfile {
    mul_add: Vec<(String, usize)>,
    f32_casts: Vec<(String, usize)>,
    f64_casts: Vec<(String, usize)>,
    reductions: Vec<(String, usize)>,
}

fn side_profile(cg: &CallGraph<'_>, exclusive: &[usize]) -> SideProfile {
    let mut p = SideProfile::default();
    for &i in exclusive {
        let f = &cg.fns[i];
        let push = |dst: &mut Vec<(String, usize)>, lines: &[usize]| {
            dst.extend(lines.iter().map(|&l| (f.file.clone(), l)));
        };
        push(&mut p.mul_add, &f.float.mul_add);
        push(&mut p.f32_casts, &f.float.f32_casts);
        push(&mut p.f64_casts, &f.float.f64_casts);
        push(&mut p.reductions, &f.float.reductions);
    }
    p
}

/// Rule: scalar/SIMD engine pairs must agree on float expression shape
/// in the code exclusive to each side.
pub fn float_determinism(
    ws: &Workspace,
    cg: &CallGraph<'_>,
    pairs: &[EnginePair],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for pair in pairs {
        let scalar_roots = cg.find(|f| !f.harness && f.name == pair.scalar_entry);
        let simd_roots = cg.find(|f| !f.harness && f.name == pair.simd_entry);
        if scalar_roots.is_empty() || simd_roots.is_empty() {
            out.push(Violation {
                rule: "float-determinism",
                file: String::new(),
                line: 0,
                msg: format!(
                    "engine pair `{}`: entry `{}` not found in the workspace \
                     (update ENGINE_PAIRS in crates/xtask/src/analyze.rs)",
                    pair.name,
                    if scalar_roots.is_empty() {
                        pair.scalar_entry
                    } else {
                        pair.simd_entry
                    }
                ),
            });
            continue;
        }
        let reach_s: HashSet<usize> = cg
            .reachable(&scalar_roots, |f| f.harness)
            .into_iter()
            .collect();
        let reach_v: HashSet<usize> = cg
            .reachable(&simd_roots, |f| f.harness)
            .into_iter()
            .collect();
        let only_s: Vec<usize> = reach_s.difference(&reach_v).copied().collect();
        let only_v: Vec<usize> = reach_v.difference(&reach_s).copied().collect();
        let ps = side_profile(cg, &only_s);
        let pv = side_profile(cg, &only_v);
        let classes: [(&str, &Vec<(String, usize)>, &Vec<(String, usize)>); 4] = [
            ("`mul_add` (fused rounding)", &ps.mul_add, &pv.mul_add),
            ("`as f32` cast", &ps.f32_casts, &pv.f32_casts),
            ("`as f64` cast", &ps.f64_casts, &pv.f64_casts),
            ("float reduction", &ps.reductions, &pv.reductions),
        ];
        for (what, scalar_sites, simd_sites) in classes {
            let (present, present_side, absent_side) =
                if !scalar_sites.is_empty() && simd_sites.is_empty() {
                    (scalar_sites, "scalar", "SIMD")
                } else if scalar_sites.is_empty() && !simd_sites.is_empty() {
                    (simd_sites, "SIMD", "scalar")
                } else {
                    continue; // both sides or neither: shapes agree
                };
            for (file, line) in present {
                if float_justified(ws, file, *line) {
                    continue;
                }
                out.push(Violation {
                    rule: "float-determinism",
                    file: file.clone(),
                    line: *line,
                    msg: format!(
                        "engine pair `{}`: {what} on the {present_side} side only \
                         (nothing comparable on the {absent_side} side) — a \
                         bit-identity hazard; align both engines or justify with \
                         `// FLOAT-DET: <why>` on or above the line",
                        pair.name
                    ),
                });
            }
        }
    }
    out
}

// --- dead-pub (informational) -----------------------------------------

/// Report of `pub fn`s with no in-workspace callers. Never gates.
pub fn dead_pub_report(ws: &Workspace) -> String {
    let fns = parse_workspace(ws);
    let called: HashSet<&str> = fns
        .iter()
        .flat_map(|f| f.calls.iter().map(|c| c.name.as_str()))
        .collect();
    let mut dead: Vec<&FnItem> = fns
        .iter()
        .filter(|f| {
            f.is_pub
                && !f.harness
                && f.name != "main"
                && !f.name.starts_with('_')
                && !called.contains(f.name.as_str())
        })
        .collect();
    dead.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let mut out = String::new();
    out.push_str(&format!(
        "dead-pub report: {} pub function(s) with no in-workspace callers\n\
         (informational — includes functions used only as bare paths or \
         exported for downstream users)\n",
        dead.len()
    ));
    for f in dead {
        out.push_str(&format!("  {}:{}: pub fn {}\n", f.file, f.line, f.name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files.iter().map(|(p, t)| SourceFile::new(*p, *t)).collect(),
        }
    }

    fn analyze(w: &Workspace) -> Vec<Violation> {
        run_all(w)
    }

    /// Empty definitions of every [`ENGINE_PAIRS`] entry, so fixtures
    /// exercising rules 1/2 through `run_all` don't trip the rule-3
    /// missing-entry (config drift) check.
    const ENGINE_STUBS: (&str, &str) = (
        "crates/dp/src/engine_stubs.rs",
        "pub fn banded_sw_probed() {}\npub fn simd_group_probed() {}\n\
         pub fn forward_likelihood_probed() {}\npub fn wavefront_likelihood_probed() {}\n\
         pub fn align_to_graph_probed() {}\npub fn align_i16() {}\n\
         pub fn align_events_probed() {}\npub fn align_events_simd_probed() {}\n",
    );

    // --- rule 1: panic-freedom ----------------------------------------

    const KERNEL_ENTRY: &str = "pub fn run_task(i: usize) { gb_dp::danger(i); }\n";

    #[test]
    fn panic_site_reachable_from_kernel_entry_is_flagged() {
        let w = ws(&[
            ("crates/suite/src/kernels/k.rs", KERNEL_ENTRY),
            (
                "crates/dp/src/x.rs",
                "pub fn danger(v: usize) -> usize {\n    let t = [1, 2, 3];\n    t[v]\n}\n",
            ),
        ]);
        let v = panic_freedom(&callgraph::build(&parse_workspace(&w)));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "panic-freedom");
        assert_eq!(v[0].file, "crates/dp/src/x.rs");
        assert!(v[0].msg.contains("danger") && v[0].msg.contains("indexing"));
        // And through the aggregate entry point, with exit-worthy output.
        assert!(!analyze(&w).is_empty());
    }

    #[test]
    fn panic_free_justification_clears_the_finding() {
        let w = ws(&[
            ENGINE_STUBS,
            ("crates/suite/src/kernels/k.rs", KERNEL_ENTRY),
            (
                "crates/dp/src/x.rs",
                "// PANIC-FREE: v is a task index, always < 3 by construction.\npub fn danger(v: usize) -> usize {\n    let t = [1, 2, 3];\n    t[v]\n}\n",
            ),
        ]);
        assert!(analyze(&w).is_empty(), "{:?}", analyze(&w));
    }

    #[test]
    fn unreachable_panics_and_harness_panics_are_ignored() {
        let w = ws(&[
            ENGINE_STUBS,
            ("crates/suite/src/kernels/k.rs", "pub fn run_task() {}\n"),
            (
                "crates/dp/src/x.rs",
                "pub fn never_called() { panic!(\"fine: unreachable from kernels\"); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::never_called(); [0][1]; }\n}\n",
            ),
        ]);
        assert!(analyze(&w).is_empty(), "{:?}", analyze(&w));
    }

    // --- rule 2: hot-alloc --------------------------------------------

    #[test]
    fn allocation_reachable_from_hot_fn_is_flagged() {
        let w = ws(&[(
            "crates/dp/src/x.rs",
            "// xtask: hot\nfn inner_loop(acc: &mut State) {\n    stage(acc);\n}\nfn stage(acc: &mut State) {\n    acc.buf.push(1);\n}\n",
        )]);
        let v = hot_alloc(&callgraph::build(&parse_workspace(&w)));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "hot-alloc");
        assert!(v[0].msg.contains(".push()") && v[0].msg.contains("inner_loop"));
    }

    #[test]
    fn direct_allocation_in_the_hot_fn_itself_is_flagged() {
        let w = ws(&[(
            "crates/dp/src/x.rs",
            "// xtask: hot\nfn inner_loop() -> Vec<u8> {\n    vec![0; 16]\n}\n",
        )]);
        let v = hot_alloc(&callgraph::build(&parse_workspace(&w)));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("vec!"));
    }

    #[test]
    fn alloc_ok_and_setup_functions_stop_the_traversal() {
        let w = ws(&[(
            "crates/dp/src/x.rs",
            "// xtask: hot\nfn inner_loop(s: &mut State) {\n    stage(s);\n    prepare_rows(s);\n    build_table(s);\n}\n// ALLOC-OK: per-task scratch, sized once per task and reused.\nfn stage(s: &mut State) {\n    s.buf.push(1);\n}\nfn prepare_rows(s: &mut State) { s.rows = Vec::with_capacity(8); }\nfn build_table(s: &mut State) { s.t = vec![0; 4]; }\n",
        )]);
        let v = hot_alloc(&callgraph::build(&parse_workspace(&w)));
        assert!(v.is_empty(), "{v:?}");
    }

    // --- rule 3: float-determinism ------------------------------------

    const TOY_PAIR: &[EnginePair] = &[EnginePair {
        name: "toy",
        scalar_entry: "s_entry",
        simd_entry: "v_entry",
    }];

    fn float_check(src: &str) -> Vec<Violation> {
        let w = ws(&[("crates/dp/src/toy.rs", src)]);
        let fns = parse_workspace(&w);
        let cg = callgraph::build(&fns);
        float_determinism(&w, &cg, TOY_PAIR)
    }

    #[test]
    fn one_sided_mul_add_is_flagged() {
        let v = float_check(
            "pub fn s_entry(x: f32) -> f32 { x * 2.0 + 1.0 }\npub fn v_entry(x: f32) -> f32 {\n    x.mul_add(2.0, 1.0)\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "float-determinism");
        assert_eq!(v[0].line, 3);
        assert!(v[0].msg.contains("mul_add") && v[0].msg.contains("SIMD side only"));
    }

    #[test]
    fn symmetric_floats_and_shared_helpers_pass() {
        // Both sides cast, and the shared helper's reduction cancels out.
        let v = float_check(
            "pub fn s_entry(x: i32) -> f32 { shared() + x as f32 }\npub fn v_entry(x: i32) -> f32 { shared() + x as f32 }\nfn shared() -> f32 {\n    let v = [1.0f32];\n    v.iter().sum::<f32>()\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_det_comment_justifies_a_site() {
        let v = float_check(
            "pub fn s_entry(x: f32) -> f32 { x * 2.0 + 1.0 }\npub fn v_entry(x: f32) -> f32 {\n    // FLOAT-DET: scalar retire path replays this fma bit-exactly.\n    x.mul_add(2.0, 1.0)\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn one_sided_f64_cast_asymmetry_is_flagged() {
        let v = float_check(
            "pub fn s_entry(x: f32) -> f32 {\n    ((x as f64) * 2.0) as f32\n}\npub fn v_entry(x: f32) -> f32 { x * 2.0 }\n",
        );
        // Both the f64 widening and the f32 narrowing are scalar-only.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.msg.contains("scalar side only")));
    }

    #[test]
    fn missing_entry_is_reported_not_ignored() {
        let v = float_check("pub fn s_entry(x: f32) -> f32 { x }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("v_entry") && v[0].msg.contains("not found"));
    }

    // --- dead-pub ------------------------------------------------------

    #[test]
    fn dead_pub_lists_uncalled_pub_fns_only() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub fn used() {}\npub fn unused() {}\nfn private_unused() {}\n",
            ),
            ("crates/a/tests/t.rs", "#[test]\nfn t() { a::used(); }\n"),
        ]);
        let report = dead_pub_report(&w);
        assert!(report.contains("pub fn unused"), "{report}");
        assert!(!report.contains("pub fn used\n"), "{report}");
        assert!(!report.contains("private_unused"), "{report}");
        assert!(report.contains("1 pub function(s)"), "{report}");
    }

    // --- the live workspace -------------------------------------------

    #[test]
    fn the_real_workspace_is_analyze_clean() {
        let w = Workspace::load(&crate::workspace::repo_root());
        let v = run_all(&w);
        assert!(
            v.is_empty(),
            "cargo xtask analyze must pass on the live workspace:\n{}",
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Guards against a parser regression silently dropping markers: a
    /// clean run means nothing if the rules lost their roots.
    #[test]
    fn the_live_workspace_has_seeded_markers() {
        let w = Workspace::load(&crate::workspace::repo_root());
        let fns = parse_workspace(&w);
        let hot = fns.iter().filter(|f| f.has_marker(MarkerKind::Hot)).count();
        let pf = fns
            .iter()
            .filter(|f| f.has_marker(MarkerKind::PanicFree))
            .count();
        assert!(hot >= 5, "expected seeded `xtask: hot` roots, found {hot}");
        assert!(
            pf >= 40,
            "expected `PANIC-FREE:` justifications, found {pf}"
        );
    }
}
