//! Workspace-wide call-graph construction over the parsed function
//! items — the reachability substrate of `cargo xtask analyze`.
//!
//! Edges are resolved **by name**, scoped by proximity: a call first
//! tries functions in the same file, then the same crate, then the
//! whole workspace; all candidates at the narrowest non-empty scope
//! get an edge (conservative over-approximation — the analyzer would
//! rather visit an extra function than miss one). Method calls whose
//! names are common `std` vocabulary (`len`, `push`, `iter`, …) and
//! path calls rooted in known `std` types/modules (`Vec::new`,
//! `std::mem::take`) are *not* resolved — those would otherwise create
//! edges to every same-named workspace function. Trait dispatch is not
//! resolved (a documented limit: a `dyn Trait` call edges to every
//! same-named function instead of the runtime impl), and macro bodies
//! are opaque — the panicking/allocating macros the rules care about
//! are detected as sites at the call line instead.

use crate::parse::{Call, CallKind, FnItem};
use std::collections::{HashMap, HashSet, VecDeque};

/// Method names resolved to `std`, never to workspace functions.
/// Collisions with a workspace method of the same name lose the edge —
/// the price of not edging `.len()` to every length helper in the tree.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "by_ref",
    "bytes",
    "ceil",
    "chain",
    "char_indices",
    "chars",
    "checked_div",
    "checked_sub",
    "chunks",
    "chunks_exact",
    "chunks_mut",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "drain",
    "clone_from_slice",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "extend",
    "fetch_add",
    "fetch_max",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fold",
    "for_each",
    "fract",
    "get",
    "get_mut",
    "get_or_init",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "ln",
    "load",
    "lock",
    "log2",
    "map",
    "map_err",
    "map_or",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "mul_add",
    "ne",
    "next",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "remove",
    "repeat",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "rsplit",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "split_at",
    "split_at_mut",
    "split_off",
    "splitn",
    "sqrt",
    "starts_with",
    "step_by",
    "store",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "take",
    "take_while",
    "then",
    "then_some",
    "to_le_bytes",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "try_into",
    "try_with",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "unzip",
    "values",
    "windows",
    "with_capacity",
    "wrapping_add",
    "wrapping_sub",
    "write",
    "zip",
    "expect",
    "exp2",
    "div_ceil",
    "rem_euclid",
    "leading_zeros",
    "trailing_zeros",
    "swap_remove",
    "truncate",
    "rotate_left",
    "rotate_right",
    "to_ascii_uppercase",
    "to_ascii_lowercase",
    "is_finite",
    "is_nan",
    "from_bits",
    "to_bits",
    "wrapping_mul",
    "checked_add",
    "checked_mul",
    "is_char_boundary",
    "next_back",
];

/// `gb_uarch::probe::Probe` trait methods. Observability calls sit on
/// every kernel hot path, but resolving them would edge every kernel
/// into every probe *implementation* (uarch counters, simt warp
/// tallies) — instrumentation bookkeeping the kernel-path rules must
/// not attribute to the kernels. Probe impls are still analyzed when
/// they are roots or reached by real calls.
const PROBE_METHODS: &[&str] = &["int_ops", "fp_ops", "simd_ops", "other_ops", "branch"];

/// Path roots resolved to `std` (or primitives), never to the workspace.
const STD_QUALIFIERS: &[&str] = &[
    "Vec",
    "VecDeque",
    "Box",
    "String",
    "str",
    "Rc",
    "Arc",
    "Cell",
    "RefCell",
    "OnceCell",
    "OnceLock",
    "Mutex",
    "RwLock",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "Option",
    "Result",
    "Some",
    "None",
    "Ok",
    "Err",
    "Ordering",
    "std",
    "core",
    "alloc",
    "f32",
    "f64",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "isize",
    "char",
    "bool",
    "Instant",
    "Duration",
    "Path",
    "PathBuf",
    "Default",
    "From",
    "Into",
    "TryFrom",
    "TryInto",
    "Iterator",
    "IntoIterator",
    "AtomicBool",
    "AtomicU64",
    "AtomicI64",
    "AtomicUsize",
    "AtomicU32",
    "Layout",
    "System",
];

/// The workspace call graph: nodes are parsed functions, edges are
/// name-resolved calls.
pub struct CallGraph<'w> {
    /// The nodes, indexed by position.
    pub fns: &'w [FnItem],
    /// `edges[i]` = indices of functions `fns[i]` may call.
    pub edges: Vec<Vec<usize>>,
}

/// The `crates/<name>/` prefix of a repo-relative path, or the whole
/// directory for files outside `crates/`.
fn crate_prefix(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some(end) = rest.find('/') {
            return &path[..7 + end + 1];
        }
    }
    path.rsplit_once('/').map_or(path, |(d, _)| d)
}

/// Builds the graph. See the module docs for the resolution policy.
pub fn build(fns: &[FnItem]) -> CallGraph<'_> {
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let edges = fns
        .iter()
        .map(|caller| {
            let mut out: Vec<usize> = Vec::new();
            let mut seen: HashSet<usize> = HashSet::new();
            for call in &caller.calls {
                for target in resolve(caller, call, &by_name, fns) {
                    if seen.insert(target) {
                        out.push(target);
                    }
                }
            }
            out
        })
        .collect();
    CallGraph { fns, edges }
}

/// Resolves one call to candidate node indices (possibly empty).
fn resolve(
    caller: &FnItem,
    call: &Call,
    by_name: &HashMap<&str, Vec<usize>>,
    fns: &[FnItem],
) -> Vec<usize> {
    match call.kind {
        CallKind::Macro => return Vec::new(), // macro bodies are opaque
        CallKind::Method
            if STD_METHODS.contains(&call.name.as_str())
                || PROBE_METHODS.contains(&call.name.as_str()) =>
        {
            return Vec::new()
        }
        CallKind::PathCall => {
            if let Some(q) = &call.qualifier {
                if STD_QUALIFIERS.contains(&q.as_str()) {
                    return Vec::new();
                }
            }
        }
        _ => {}
    }
    let Some(cands) = by_name.get(call.name.as_str()) else {
        return Vec::new();
    };
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| fns[i].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let prefix = crate_prefix(&caller.file);
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| fns[i].file.starts_with(prefix))
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands.clone()
}

impl CallGraph<'_> {
    /// Every node reachable from `roots` (inclusive), following edges
    /// but refusing to descend *into* nodes where `stop` returns true
    /// (the stopped node itself is not visited). Roots are visited
    /// unconditionally.
    pub fn reachable(&self, roots: &[usize], stop: impl Fn(&FnItem) -> bool) -> Vec<usize> {
        let mut seen: HashSet<usize> = HashSet::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if seen.insert(r) {
                queue.push_back(r);
            }
        }
        let mut order = Vec::new();
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &j in &self.edges[i] {
                if stop(&self.fns[j]) {
                    continue;
                }
                if seen.insert(j) {
                    queue.push_back(j);
                }
            }
        }
        order
    }

    /// Node indices whose function matches a predicate.
    pub fn find(&self, pred: impl Fn(&FnItem) -> bool) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| pred(f))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_workspace;
    use crate::workspace::{SourceFile, Workspace};

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files.iter().map(|(p, t)| SourceFile::new(*p, *t)).collect(),
        }
    }

    fn names<'a>(cg: &'a CallGraph<'a>, ids: &[usize]) -> Vec<&'a str> {
        let mut v: Vec<&str> = ids.iter().map(|&i| cg.fns[i].name.as_str()).collect();
        v.sort();
        v
    }

    #[test]
    fn resolves_same_file_before_same_crate_before_workspace() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn entry() { helper(); }\nfn helper() { local(); }\nfn local() {}\n",
            ),
            ("crates/a/src/other.rs", "fn helper() {}\n"),
            (
                "crates/b/src/lib.rs",
                "fn helper() {}\nfn cross() { far(); }\n",
            ),
            ("crates/a/src/far_home.rs", "fn far() {}\n"),
        ]);
        let fns = parse_workspace(&w);
        let cg = build(&fns);
        let entry = cg.find(|f| f.name == "entry")[0];
        // entry -> same-file helper only (not other.rs's or crate b's).
        let helper_targets: Vec<&str> = cg.edges[entry]
            .iter()
            .map(|&i| cg.fns[i].file.as_str())
            .collect();
        assert_eq!(helper_targets, vec!["crates/a/src/lib.rs"]);
        // cross (crate b) -> far lives only in crate a: workspace scope.
        let cross = cg.find(|f| f.name == "cross")[0];
        assert_eq!(names(&cg, &cg.edges[cross]), vec!["far"]);
    }

    #[test]
    fn std_vocabulary_is_not_workspace_resolved() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn len() { boom(); }\nfn boom() {}\nfn user(v: &[u8]) { let _ = v.len(); Vec::<u8>::new(); }\n",
        )]);
        let fns = parse_workspace(&w);
        let cg = build(&fns);
        let user = cg.find(|f| f.name == "user")[0];
        assert!(
            cg.edges[user].is_empty(),
            "`.len()` / `Vec::new` must not edge into the workspace: {:?}",
            names(&cg, &cg.edges[user])
        );
    }

    #[test]
    fn reachability_honors_stop_predicate() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn root() { mid(); prepare_x(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn prepare_x() { hidden(); }\nfn hidden() {}\n",
        )]);
        let fns = parse_workspace(&w);
        let cg = build(&fns);
        let roots = cg.find(|f| f.name == "root");
        let all = cg.reachable(&roots, |_| false);
        assert_eq!(
            names(&cg, &all),
            vec!["hidden", "leaf", "mid", "prepare_x", "root"]
        );
        let stopped = cg.reachable(&roots, |f| f.name.starts_with("prepare"));
        assert_eq!(names(&cg, &stopped), vec!["leaf", "mid", "root"]);
    }

    #[test]
    fn method_calls_resolve_to_workspace_impls_when_not_std() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl R { fn merge(&mut self, o: &R) { self.total += o.total; } }\nfn fold(r: &mut R, o: &R) { r.merge(o); }\n",
        )]);
        let fns = parse_workspace(&w);
        let cg = build(&fns);
        let fold = cg.find(|f| f.name == "fold")[0];
        assert_eq!(names(&cg, &cg.edges[fold]), vec!["merge"]);
    }
}
