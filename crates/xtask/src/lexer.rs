//! A minimal Rust lexer for lint purposes: splits a source file into a
//! **code shadow** (the original text with comment bodies and string
//! contents blanked out, byte-for-byte and line-for-line) and a
//! **comment shadow** (the converse). Lints can then grep the code
//! shadow for tokens like `unsafe` or `Relaxed` without tripping over
//! occurrences inside comments, doc text, or string literals, and grep
//! the comment shadow for `SAFETY:` annotations.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! `"…"` strings with escapes, raw strings `r"…"`/`r#"…"#` (any hash
//! depth, with the `b`/`c` prefixes), char literals with escapes, and
//! the char-vs-lifetime ambiguity (`'a'` is a literal, `'a` in
//! `&'a str` is not). This is not a full lexer — it does not tokenize —
//! but the blanking is exact enough for word-boundary searches.

/// The two shadows of one source text. Both have exactly the original
/// length and newline positions; non-structural bytes are replaced by
/// spaces in the shadow they don't belong to.
#[derive(Debug, Clone)]
pub struct Shadows {
    /// Source with comments and string/char *contents* blanked.
    pub code: String,
    /// Source with everything but comment text blanked.
    pub comments: String,
}

impl Shadows {
    /// Lines of the code shadow (same count and numbering as source).
    pub fn code_lines(&self) -> Vec<&str> {
        self.code.lines().collect()
    }

    /// Lines of the comment shadow.
    pub fn comment_lines(&self) -> Vec<&str> {
        self.comments.lines().collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Splits `src` into code and comment shadows. See the module docs for
/// the supported syntax; the function never panics on malformed input —
/// an unterminated construct simply blanks to end of file.
pub fn shadows(src: &str) -> Shadows {
    let bytes = src.as_bytes();
    let mut code = vec![b' '; bytes.len()];
    let mut comments = vec![b' '; bytes.len()];
    let mut st = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            code[i] = b'\n';
            comments[i] = b'\n';
            if st == State::LineComment {
                st = State::Code;
            }
            i += 1;
            continue;
        }
        match st {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    st = State::LineComment;
                    comments[i] = b'/';
                    i += 1;
                    comments[i] = b'/';
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    st = State::BlockComment(1);
                    comments[i] = b'/';
                    i += 1;
                    comments[i] = b'*';
                } else if b == b'"' {
                    st = State::Str;
                    code[i] = b'"';
                } else if let Some(hashes) = raw_string_open(bytes, i) {
                    // Copy the whole opener (`r##"`) into the code
                    // shadow, then blank until the matching closer.
                    let open_end = raw_open_end(bytes, i);
                    for (j, cj) in code.iter_mut().enumerate().take(open_end).skip(i) {
                        *cj = bytes[j];
                    }
                    st = State::RawStr(hashes);
                    i = open_end - 1;
                } else if b == b'\'' && char_literal_opens(bytes, i) {
                    st = State::Char;
                    code[i] = b'\'';
                } else {
                    code[i] = b;
                }
            }
            State::LineComment => comments[i] = b,
            State::BlockComment(depth) => {
                comments[i] = b;
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    i += 1;
                    comments[i] = b'/';
                    st = if depth > 1 {
                        State::BlockComment(depth - 1)
                    } else {
                        State::Code
                    };
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    i += 1;
                    comments[i] = b'*';
                    st = State::BlockComment(depth + 1);
                }
            }
            State::Str => {
                if b == b'\\' {
                    i += 1; // skip the escaped byte (stays blanked)
                } else if b == b'"' {
                    code[i] = b'"';
                    st = State::Code;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(bytes, i, hashes) {
                    let end = i + 1 + hashes as usize;
                    for (j, cj) in code
                        .iter_mut()
                        .enumerate()
                        .take(end.min(bytes.len()))
                        .skip(i)
                    {
                        if bytes[j] != b'\n' {
                            *cj = bytes[j];
                        }
                    }
                    i = end - 1;
                    st = State::Code;
                }
            }
            State::Char => {
                if b == b'\\' {
                    i += 1;
                } else if b == b'\'' {
                    code[i] = b'\'';
                    st = State::Code;
                }
            }
        }
        i += 1;
    }
    Shadows {
        code: String::from_utf8_lossy(&code).into_owned(),
        comments: String::from_utf8_lossy(&comments).into_owned(),
    }
}

/// Is `bytes[i] == '\''` a char-literal opener rather than a lifetime?
/// Heuristic (exact for well-formed Rust): it's a lifetime iff the next
/// char starts an identifier **and** the char after the identifier-ish
/// run is not `'`; `'\…'` and `'<non-ident>'` are literals.
fn char_literal_opens(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        None => false,
        Some(b'\\') => true,
        Some(&c) if c == b'_' || c.is_ascii_alphabetic() => {
            // `'a'` is a literal; `'a ` / `'abc` are lifetimes; `'static`.
            bytes.get(i + 2) == Some(&b'\'')
        }
        Some(_) => true, // '(' etc: a char literal like '(' or '0'
    }
}

/// If a raw-string opener (`r"`, `r#"`, `br##"`, `cr"`) starts at `i`,
/// returns its hash count.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<u32> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') || bytes.get(j) == Some(&b'c') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    // `r` must not be the tail of a longer identifier (`var"` is not raw).
    if i > 0 && (bytes[i - 1] == b'_' || bytes[i - 1].is_ascii_alphanumeric()) {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// Byte index one past a raw-string opener starting at `i`.
fn raw_open_end(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    while bytes.get(j) != Some(&b'"') {
        j += 1;
    }
    j + 1
}

/// Does the `"` at `i` close a raw string with `hashes` hashes?
fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// Whether `line` contains `word` delimited by non-identifier chars —
/// `word_on_line("pub unsafe fn", "unsafe")` but not
/// `word_on_line("unsafe_code", "unsafe")`.
pub fn word_on_line(line: &str, word: &str) -> bool {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident_byte(b[start - 1]);
        let post_ok = end >= b.len() || !is_ident_byte(b[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_and_block_comments() {
        let s = shadows("let x = 1; // unsafe here\n/* unsafe\n there */ let y = 2;\n");
        assert!(!word_on_line(&s.code, "unsafe"));
        assert!(s.comments.contains("unsafe here"));
        assert!(s.code.contains("let x = 1;"));
        assert!(s.code.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let s = shadows("a /* outer /* inner */ still comment */ b\n");
        let code: String = s.code.split_whitespace().collect();
        assert_eq!(code, "ab");
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let s = shadows(r#"let s = "unsafe { Relaxed }"; call();"#);
        assert!(!word_on_line(&s.code, "unsafe"));
        assert!(!word_on_line(&s.code, "Relaxed"));
        let blanked = format!("\"{}\"", " ".repeat("unsafe { Relaxed }".len()));
        assert!(s.code.contains(&blanked), "code shadow: {:?}", s.code);
        assert!(s.code.contains("call();"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let s = shadows("let s = r#\"unsafe \" quote\"#; unsafe {}\n");
        // The raw-string body is blanked; the real keyword survives.
        assert_eq!(s.code.matches("unsafe").count(), 1);
    }

    #[test]
    fn escaped_quote_does_not_terminate() {
        let s = shadows(r#"let s = "a\"unsafe"; id();"#);
        assert!(!word_on_line(&s.code, "unsafe"));
        assert!(s.code.contains("id();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = shadows("fn f<'a>(c: char) -> &'a str { if c == '\"' { x() } else { y() } }\n");
        // The quote char literal must not open a string.
        assert!(s.code.contains("x()"));
        assert!(s.code.contains("y()"));
        assert!(s.code.contains("<'a>"));
        let s2 = shadows("let c = 'u'; unsafe {}\n");
        assert_eq!(s2.code.matches("unsafe").count(), 1);
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n// c\nb\n\"s\ntill\"\nc\n";
        let s = shadows(src);
        assert_eq!(s.code.lines().count(), src.lines().count());
        assert_eq!(s.comments.lines().count(), src.lines().count());
    }

    #[test]
    fn word_boundaries() {
        assert!(word_on_line("unsafe {", "unsafe"));
        assert!(word_on_line("pub unsafe impl X {}", "unsafe"));
        assert!(!word_on_line("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!word_on_line("unsafe_op_in_unsafe_fn", "unsafe"));
        assert!(word_on_line("Ordering::Relaxed)", "Relaxed"));
        assert!(!word_on_line("RelaxedPlus", "Relaxed"));
    }
}
