//! The lint rules behind `cargo xtask lint`.
//!
//! Each rule is a pure function over a [`Workspace`] (an in-memory file
//! set), so the unit tests below can prove both directions: the real
//! repo passes, and seeded violations fail. The binary loads the real
//! repo into a `Workspace` and runs every rule.
//!
//! Rules (see DESIGN.md, "Concurrency & safety invariants"):
//!
//! * `safety-comments` — every `unsafe` keyword has a `SAFETY:` comment
//!   within five lines above (or one line below, for `unsafe fn`
//!   signatures whose justification opens the body).
//! * `relaxed-allowlist` — `Ordering::Relaxed` appears only in the
//!   allowlisted slot-registry/task-cursor files (and the gb-loom
//!   checker, whose tests exercise `Relaxed` deliberately).
//! * `schema-version` — the `SCHEMA_VERSION` literal in
//!   `crates/obs/src/manifest.rs` is named on a "schema" line of both
//!   README.md and CHANGES.md.
//! * `kernel-table` — every `KernelId` variant is registered in the
//!   `ALL` table and handled by `work_unit`.
//! * `bench-ci` — every Criterion bench declared in
//!   `crates/bench/Cargo.toml` is wired into a CI workflow.
//! * `clippy-allow-justified` — every `allow(clippy::…)` /
//!   `allow(dead_code)`-style attribute carries a justification comment
//!   on the same line or the line above.
//! * `unsafe-hygiene` — every crate root forbids (or denies)bare
//!   `unsafe_code`, and crates containing `unsafe` also deny
//!   `unsafe_op_in_unsafe_fn`.
//! * `traced-stages` — inside every `*_traced` pipeline function in
//!   `crates/suite/`, each `stage(…)` call (and the `RootSpan::enter`
//!   frame) carries a non-empty string-literal name that is unique
//!   within that function, so stage-tree frames never silently merge.
//!   Names must also be free of `;` and whitespace — `;` is the
//!   collapsed-stack path separator and whitespace is the stack/value
//!   separator, so such names would be sanitized by `agg` and the
//!   source name would no longer match the rendered frame.
//! * `cli-readme-sync` — every subcommand and long `--flag` of the
//!   `genomicsbench` binary appears in README.md (subcommands on a
//!   `genomicsbench …` line), so the CLI surface can't outgrow its
//!   documentation.
//! * `dp-engine-help` — every kernel wired into `prepare_dp`'s
//!   engine-aware dispatch (a `KernelId::X => … prepare_with(size,
//!   engine)` arm) is named, lowercase, in the `--dp-engine` paragraph
//!   of the CLI usage text, so a newly ported kernel can't ship with
//!   help text that still lists the old engine roster.
//! * `substrate-schema` — the `SUBSTRATE_SCHEMA` literal in
//!   `crates/substrate/src/lib.rs` is named on a "substrate … schema"
//!   line of both README.md and CHANGES.md, the same drift guard the
//!   manifest schema gets: bumping the on-disk encoding without telling
//!   the docs is how stale-cache bug reports are born.
//! * `marker-attached` — every analyzer marker comment (the `xtask:
//!   hot`, `PANIC-FREE:` and `ALLOC-OK:` vocabulary `cargo xtask
//!   analyze` consumes) sits on its own comment line directly above a
//!   `fn` item (attributes and further comments may intervene). A
//!   marker stranded by refactoring — trailing a statement, or floating
//!   above a struct — would otherwise be silently ignored by the
//!   analyzer, which is exactly how annotations drift from the code
//!   they justify.

use crate::lexer::{word_on_line, Shadows};
pub use crate::workspace::{SourceFile, Workspace};

/// A single finding; `line` is 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired (kebab-case).
    pub rule: &'static str,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line (0 for file-level findings).
    pub line: usize,
    /// Human-readable explanation.
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule, self.file, self.line, self.msg
        )
    }
}

/// Runs every rule; an empty result means the workspace is clean.
pub fn run_all(ws: &Workspace) -> Vec<Violation> {
    let mut v = Vec::new();
    v.extend(safety_comments(ws));
    v.extend(relaxed_allowlist(ws));
    v.extend(schema_version(ws));
    v.extend(kernel_table(ws));
    v.extend(bench_ci(ws));
    v.extend(clippy_allow_justified(ws));
    v.extend(unsafe_hygiene(ws));
    v.extend(traced_stages(ws));
    v.extend(cli_readme_sync(ws));
    v.extend(dp_engine_help(ws));
    v.extend(substrate_schema(ws));
    v.extend(marker_attached(ws));
    v
}

// --- safety-comments ---------------------------------------------------

/// How far above an `unsafe` the `SAFETY:` comment may sit.
const SAFETY_WINDOW_ABOVE: usize = 5;

/// Every `unsafe` keyword needs a nearby `SAFETY:` comment: within
/// [`SAFETY_WINDOW_ABOVE`] lines above, or on the next line (the
/// convention for `unsafe fn` signatures that open with their
/// justification).
pub fn safety_comments(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in ws.rust_sources() {
        let sh = f.shadows();
        let code = sh.code_lines();
        let comments = sh.comment_lines();
        for (i, line) in code.iter().enumerate() {
            if !word_on_line(line, "unsafe") {
                continue;
            }
            let lo = i.saturating_sub(SAFETY_WINDOW_ABOVE);
            let hi = (i + 1).min(comments.len().saturating_sub(1));
            let justified = comments[lo..=hi].iter().any(|c| c.contains("SAFETY:"));
            if !justified {
                out.push(Violation {
                    rule: "safety-comments",
                    file: f.path.clone(),
                    line: i + 1,
                    msg: format!(
                        "`unsafe` without a `// SAFETY:` comment within {SAFETY_WINDOW_ABOVE} \
                         lines above (or on the following line)"
                    ),
                });
            }
        }
    }
    out
}

// --- relaxed-allowlist -------------------------------------------------

/// Files (prefixes) where `Ordering::Relaxed` is legitimate: the
/// model-checked slot registry and task cursor, whose file docs justify
/// every relaxed access, and the gb-loom checker itself (its smoke
/// tests seed relaxed races on purpose; the checker upgrades all
/// orderings to SeqCst anyway).
const RELAXED_ALLOWLIST: &[&str] = &[
    "crates/obs/src/mem.rs",
    "crates/obs/src/pool.rs",
    "crates/loom/",
];

/// `Relaxed` may only appear in the allowlisted files — everywhere else
/// the right default is `SeqCst` until a loom model justifies weaker.
pub fn relaxed_allowlist(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in ws.rust_sources() {
        if RELAXED_ALLOWLIST.iter().any(|p| f.path.starts_with(p)) {
            continue;
        }
        let sh = f.shadows();
        for (i, line) in sh.code_lines().iter().enumerate() {
            if word_on_line(line, "Relaxed") {
                out.push(Violation {
                    rule: "relaxed-allowlist",
                    file: f.path.clone(),
                    line: i + 1,
                    msg: "`Ordering::Relaxed` outside the allowlisted registry/cursor files; \
                          use SeqCst or extend the model-checked allowlist"
                        .into(),
                });
            }
        }
    }
    out
}

// --- schema-version ----------------------------------------------------

/// Extracts the quoted literal from the `SCHEMA_VERSION` declaration.
fn declared_schema_version(ws: &Workspace) -> Option<(String, String)> {
    let f = ws.get("crates/obs/src/manifest.rs")?;
    for line in f.text.lines() {
        if line.contains("SCHEMA_VERSION") && line.contains('=') {
            let lit: String = line
                .split('"')
                .nth(1)
                .map(str::to_string)
                .unwrap_or_default();
            if !lit.is_empty() {
                return Some((f.path.clone(), lit));
            }
        }
    }
    None
}

/// The manifest schema version literal must be stated on a line that
/// also mentions "schema" in README.md and CHANGES.md, so docs can't
/// silently drift from the code.
pub fn schema_version(ws: &Workspace) -> Vec<Violation> {
    let Some((src, lit)) = declared_schema_version(ws) else {
        return vec![Violation {
            rule: "schema-version",
            file: "crates/obs/src/manifest.rs".into(),
            line: 0,
            msg: "SCHEMA_VERSION declaration not found".into(),
        }];
    };
    let mut out = Vec::new();
    for doc in ["README.md", "CHANGES.md"] {
        let mentioned = ws.get(doc).is_some_and(|f| {
            f.text
                .lines()
                .any(|l| l.to_ascii_lowercase().contains("schema") && l.contains(&lit))
        });
        if !mentioned {
            out.push(Violation {
                rule: "schema-version",
                file: doc.into(),
                line: 0,
                msg: format!(
                    "no line mentions schema version {lit} (declared in {src}); \
                     update the doc to match the code"
                ),
            });
        }
    }
    out
}

// --- substrate-schema --------------------------------------------------

/// Extracts the integer literal from the `SUBSTRATE_SCHEMA` declaration.
fn declared_substrate_schema(ws: &Workspace) -> Option<(String, String)> {
    let f = ws.get("crates/substrate/src/lib.rs")?;
    for line in f.text.lines() {
        if line.contains("SUBSTRATE_SCHEMA") && line.contains('=') {
            let lit = line
                .split('=')
                .nth(1)
                .map(|s| s.trim().trim_end_matches(';').trim())
                .unwrap_or_default();
            if !lit.is_empty() && lit.bytes().all(|b| b.is_ascii_digit()) {
                return Some((f.path.clone(), lit.to_string()));
            }
        }
    }
    None
}

/// True when `line` names the substrate schema at exactly `lit`: the
/// line mentions "substrate", and some "schema" on it is followed
/// (allowing spaces, `:` and a `v` prefix) by the literal with no
/// version continuation after it — so a manifest-schema mention like
/// "schema 1.4" can't satisfy a substrate literal of `1`.
fn mentions_substrate_schema(line: &str, lit: &str) -> bool {
    let l = line.to_ascii_lowercase();
    if !l.contains("substrate") {
        return false;
    }
    let mut rest = l.as_str();
    while let Some(i) = rest.find("schema") {
        rest = &rest[i + "schema".len()..];
        let after = rest.trim_start_matches([' ', ':', 'v']);
        if let Some(tail) = after.strip_prefix(lit) {
            if !tail.starts_with(|c: char| c.is_ascii_digit() || c == '.') {
                return true;
            }
        }
    }
    false
}

/// The substrate cache encoding version must be stated, next to the
/// word "substrate", in README.md and CHANGES.md — mirror of
/// [`schema_version`] for the on-disk `.gbs` container.
pub fn substrate_schema(ws: &Workspace) -> Vec<Violation> {
    let Some((src, lit)) = declared_substrate_schema(ws) else {
        return vec![Violation {
            rule: "substrate-schema",
            file: "crates/substrate/src/lib.rs".into(),
            line: 0,
            msg: "SUBSTRATE_SCHEMA declaration not found".into(),
        }];
    };
    let mut out = Vec::new();
    for doc in ["README.md", "CHANGES.md"] {
        let mentioned = ws
            .get(doc)
            .is_some_and(|f| f.text.lines().any(|l| mentions_substrate_schema(l, &lit)));
        if !mentioned {
            out.push(Violation {
                rule: "substrate-schema",
                file: doc.into(),
                line: 0,
                msg: format!(
                    "no line mentions substrate schema {lit} (declared in {src}); \
                     update the doc to match the code"
                ),
            });
        }
    }
    out
}

// --- kernel-table ------------------------------------------------------

/// The text of the `{…}` block that starts at the first `{` at or after
/// `from` (brace-matched on the code shadow, so strings/comments can't
/// unbalance it).
fn brace_block(sh: &Shadows, from: usize) -> Option<&str> {
    let code = &sh.code;
    let open = code[from..].find('{')? + from;
    let mut depth = 0usize;
    for (off, ch) in code[open..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&code[open..open + off + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Identifier variants of `enum KernelId { … }` (skips attribute/doc
/// noise — anything that isn't a leading capitalized ident).
fn kernel_variants(sh: &Shadows) -> Vec<String> {
    let Some(pos) = sh.code.find("enum KernelId") else {
        return Vec::new();
    };
    let Some(block) = brace_block(sh, pos) else {
        return Vec::new();
    };
    block
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| {
            !w.is_empty()
                && w.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && w != &"KernelId"
        })
        .map(str::to_string)
        .collect()
}

/// Every `KernelId` variant must be registered in the `ALL` table and
/// carry a `work_unit` arm — a new kernel that compiles but is absent
/// from the suite table or reports no throughput unit is a bug the type
/// system can't catch.
pub fn kernel_table(ws: &Workspace) -> Vec<Violation> {
    const MOD: &str = "crates/suite/src/kernels/mod.rs";
    let Some(f) = ws.get(MOD) else {
        return vec![Violation {
            rule: "kernel-table",
            file: MOD.into(),
            line: 0,
            msg: "kernel table module missing".into(),
        }];
    };
    let sh = f.shadows();
    let variants = kernel_variants(&sh);
    let mut out = Vec::new();
    if variants.is_empty() {
        out.push(Violation {
            rule: "kernel-table",
            file: MOD.into(),
            line: 0,
            msg: "could not parse `enum KernelId` variants".into(),
        });
        return out;
    }
    let all_block = sh
        .code
        .find("ALL")
        .and_then(|p| {
            // Skip the type annotation's `[KernelId; N]`: the variant
            // list is the bracket after the `=`.
            let tail = &sh.code[p..];
            let eq = tail.find('=')?;
            let open = eq + tail[eq..].find('[')?;
            let close = open + tail[open..].find(']')?;
            Some(tail[open..close].to_string())
        })
        .unwrap_or_default();
    let work_unit_block = sh
        .code
        .find("fn work_unit")
        .and_then(|p| brace_block(&sh, p))
        .unwrap_or_default();
    for v in &variants {
        if !word_on_line(&all_block, v) {
            out.push(Violation {
                rule: "kernel-table",
                file: MOD.into(),
                line: 0,
                msg: format!("KernelId::{v} missing from the `ALL` registration table"),
            });
        }
        if !word_on_line(work_unit_block, v) {
            out.push(Violation {
                rule: "kernel-table",
                file: MOD.into(),
                line: 0,
                msg: format!("KernelId::{v} has no `work_unit` arm"),
            });
        }
    }
    out
}

// --- bench-ci ----------------------------------------------------------

/// Bench names declared in `crates/bench/Cargo.toml`.
fn declared_benches(ws: &Workspace) -> Vec<String> {
    let Some(f) = ws.get("crates/bench/Cargo.toml") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut in_bench = false;
    for line in f.text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_bench = line == "[[bench]]";
        } else if in_bench && line.starts_with("name") {
            if let Some(name) = line.split('"').nth(1) {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// Every declared Criterion bench must appear in some CI workflow —
/// benches that never build in CI rot silently.
pub fn bench_ci(ws: &Workspace) -> Vec<Violation> {
    let benches = declared_benches(ws);
    if benches.is_empty() {
        return vec![Violation {
            rule: "bench-ci",
            file: "crates/bench/Cargo.toml".into(),
            line: 0,
            msg: "no [[bench]] entries found".into(),
        }];
    }
    let ci_text: String = ws
        .files
        .iter()
        .filter(|f| {
            f.path.starts_with(".github/workflows/")
                && (f.path.ends_with(".yml") || f.path.ends_with(".yaml"))
        })
        .map(|f| f.text.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    benches
        .iter()
        .filter(|b| !word_on_line(&ci_text, b))
        .map(|b| Violation {
            rule: "bench-ci",
            file: "crates/bench/Cargo.toml".into(),
            line: 0,
            msg: format!("bench `{b}` is not referenced by any .github/workflows/*.yml"),
        })
        .collect()
}

// --- clippy-allow-justified -------------------------------------------

/// Every lint-silencing `allow(…)` attribute must say why, in a comment
/// on the same line or the line directly above — an unexplained allow
/// is a suppressed warning nobody can re-evaluate later.
pub fn clippy_allow_justified(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in ws.rust_sources() {
        let sh = f.shadows();
        let code = sh.code_lines();
        let comments = sh.comment_lines();
        for (i, line) in code.iter().enumerate() {
            if !line.contains("allow(") {
                continue;
            }
            // `#[allow(…)]` / `#![allow(…)]` attributes only; calls like
            // `foo.allow(x)` don't match the attribute form.
            if !(line.contains("#[allow(") || line.contains("#![allow(")) {
                continue;
            }
            let nearby_comment = |j: usize| comments.get(j).is_some_and(|c| c.trim().len() > 2);
            if !(nearby_comment(i) || (i > 0 && nearby_comment(i - 1))) {
                out.push(Violation {
                    rule: "clippy-allow-justified",
                    file: f.path.clone(),
                    line: i + 1,
                    msg: "`allow(…)` without a justification comment on this or the \
                          previous line"
                        .into(),
                });
            }
        }
    }
    out
}

// --- unsafe-hygiene ----------------------------------------------------

/// Crate roots: `<dir>/src/lib.rs` or `<dir>/src/main.rs` where
/// `<dir>/Cargo.toml` is in the workspace (plus the workspace root).
fn crate_roots(ws: &Workspace) -> Vec<(&SourceFile, String)> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !(f.path.ends_with("src/lib.rs") || f.path.ends_with("src/main.rs")) {
            continue;
        }
        let dir = f
            .path
            .trim_end_matches("src/lib.rs")
            .trim_end_matches("src/main.rs")
            .to_string();
        let manifest = format!("{dir}Cargo.toml");
        if ws.get(&manifest).is_some() {
            out.push((f, dir));
        }
    }
    out
}

/// Every crate root must forbid (or deny) `unsafe_code`; crates that do
/// contain `unsafe` must additionally deny `unsafe_op_in_unsafe_fn` so
/// each unsafe operation needs its own scoped block + SAFETY comment.
pub fn unsafe_hygiene(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for (root, dir) in crate_roots(ws) {
        let sh = root.shadows();
        let gated =
            sh.code.contains("forbid(unsafe_code)") || sh.code.contains("deny(unsafe_code)");
        if !gated {
            out.push(Violation {
                rule: "unsafe-hygiene",
                file: root.path.clone(),
                line: 0,
                msg: "crate root lacks `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]`".into(),
            });
        }
        // Only the crate's `src/` tree: `<dir>/tests` and (for the
        // workspace root, where `dir` is empty) member crates are
        // separate compilation units with their own roots.
        let src_prefix = format!("{dir}src/");
        let crate_has_unsafe = ws
            .rust_sources()
            .filter(|f| f.path.starts_with(&src_prefix))
            .any(|f| {
                f.shadows()
                    .code_lines()
                    .iter()
                    .any(|l| word_on_line(l, "unsafe"))
            });
        if crate_has_unsafe && !sh.code.contains("deny(unsafe_op_in_unsafe_fn)") {
            out.push(Violation {
                rule: "unsafe-hygiene",
                file: root.path.clone(),
                line: 0,
                msg: "crate contains `unsafe` but its root lacks \
                      `#![deny(unsafe_op_in_unsafe_fn)]`"
                    .into(),
            });
        }
    }
    out
}

// --- traced-stages -----------------------------------------------------

/// The identifier following a `fn ` keyword on a code-shadow line, when
/// the line declares one.
fn declared_fn_name(code_line: &str) -> Option<&str> {
    let mut search = 0;
    while let Some(rel) = code_line[search..].find("fn ") {
        let at = search + rel;
        // Word boundary on the left (`fn` at start or after non-ident).
        let bounded = at == 0
            || code_line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| !(c.is_ascii_alphanumeric() || c == '_'));
        if bounded {
            let rest = &code_line[at + 3..];
            let end = rest
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(rest.len());
            if end > 0 {
                return Some(&rest[..end]);
            }
        }
        search = at + 3;
    }
    None
}

/// Inside every `*_traced` pipeline function in `crates/suite/`, each
/// `stage(…)` call — and the `RootSpan::enter` frame sharing its
/// namespace — must name its span with a non-empty string literal on
/// the call line, unique within that function. Duplicate or missing
/// names make stage-tree frames silently merge, so a flamegraph
/// attributes two different stages' time to one frame and nobody
/// notices.
pub fn traced_stages(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in ws.rust_sources() {
        if !f.path.starts_with("crates/suite/") {
            continue;
        }
        let raw: Vec<&str> = f.text.lines().collect();
        let sh = f.shadows();
        let mut current_fn = String::new();
        // name → first line it appeared on, reset per function.
        let mut seen: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
        for (i, line) in sh.code_lines().iter().enumerate() {
            if let Some(name) = declared_fn_name(line) {
                current_fn = name.to_string();
                seen.clear();
            }
            if !current_fn.ends_with("_traced") {
                continue;
            }
            let is_stage_call = line.contains("stage(")
                && !line.contains("fn stage")
                // `*_traced(` call-throughs are not stage spans.
                && !line.contains("_traced(");
            let is_root_frame = line.contains("RootSpan::enter(");
            if !(is_stage_call || is_root_frame) {
                continue;
            }
            // The shadow blanks literal contents, so the name comes from
            // the raw text of the same line.
            let name = raw.get(i).and_then(|l| l.split('"').nth(1)).unwrap_or("");
            if name.is_empty() {
                out.push(Violation {
                    rule: "traced-stages",
                    file: f.path.clone(),
                    line: i + 1,
                    msg: format!(
                        "stage span in `{current_fn}` has no string-literal name on the \
                         call line; name it inline so the lint can check uniqueness"
                    ),
                });
                continue;
            }
            if name.contains(';') || name.contains(char::is_whitespace) {
                out.push(Violation {
                    rule: "traced-stages",
                    file: f.path.clone(),
                    line: i + 1,
                    msg: format!(
                        "stage name {name:?} in `{current_fn}` contains ';' or whitespace; \
                         ';' separates path segments and whitespace separates stack from \
                         value in collapsed-stack output, so agg would sanitize the name \
                         and the rendered frame would not match the source"
                    ),
                });
            }
            if let Some(&prev) = seen.get(name) {
                out.push(Violation {
                    rule: "traced-stages",
                    file: f.path.clone(),
                    line: i + 1,
                    msg: format!(
                        "duplicate stage name \"{name}\" in `{current_fn}` (first used on \
                         line {prev}); frames with one name merge in the stage tree"
                    ),
                });
            } else {
                seen.insert(name.to_string(), i + 1);
            }
        }
    }
    out
}

// --- cli-readme-sync ---------------------------------------------------

/// The CLI entry point whose surface README.md must document.
const CLI_BIN: &str = "crates/suite/src/bin/genomicsbench.rs";

/// Every string literal in the code shadow, as `(byte offset of the
/// opening quote, raw contents)`. The shadow blanks contents but keeps
/// both quotes byte-aligned with the source, so the contents come from
/// the raw text between the shadow's quote positions.
fn string_literals<'a>(raw: &'a str, code: &str) -> Vec<(usize, &'a str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if let Some(rel) = code[i + 1..].find('"') {
                let close = i + 1 + rel;
                out.push((i, &raw[i + 1..close]));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Subcommand names: string-literal patterns of the top-level
/// `match cmd.as_str()` arms in the CLI binary. A literal counts as an
/// arm pattern when it sits at brace depth 1 of the match block and is
/// followed by `=>` (or `|`, for alternations) — which excludes
/// literals inside depth-1 calls such as the unknown-command error.
fn cli_subcommands(raw: &str, sh: &Shadows) -> Vec<String> {
    let code = &sh.code;
    let Some(pos) = code.find("match cmd.as_str()") else {
        return Vec::new();
    };
    let Some(open_rel) = code[pos..].find('{') else {
        return Vec::new();
    };
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut i = pos + open_rel;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            b'"' if depth == 1 => {
                if let Some(rel) = code[i + 1..].find('"') {
                    let close = i + 1 + rel;
                    let after = code[close + 1..].trim_start();
                    if after.starts_with("=>") || after.starts_with('|') {
                        out.push(raw[i + 1..close].to_string());
                    }
                    i = close + 1;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// A `--long-flag` literal: `--` followed by a lowercase word, possibly
/// hyphenated. Multi-line literals (the usage text) and prose never
/// match because of the whole-string shape check.
fn is_long_flag(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("--") else {
        return false;
    };
    rest.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && rest
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// Does `readme` mention `flag` as a whole flag (not as a prefix of a
/// longer one, so `--flame-svg` cannot stand in for `--flame`)?
fn flag_documented(readme: &str, flag: &str) -> bool {
    readme.match_indices(flag).any(|(at, _)| {
        readme[at + flag.len()..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'))
    })
}

/// Every `genomicsbench` subcommand and long flag must appear in
/// README.md — subcommands on a line that also says `genomicsbench`
/// (the usage synopsis), flags anywhere. A flag the README has never
/// heard of is a feature nobody will find.
pub fn cli_readme_sync(ws: &Workspace) -> Vec<Violation> {
    let violation = |file: &str, msg: String| Violation {
        rule: "cli-readme-sync",
        file: file.into(),
        line: 0,
        msg,
    };
    let Some(bin) = ws.get(CLI_BIN) else {
        return vec![violation(CLI_BIN, "CLI binary source missing".into())];
    };
    let Some(readme) = ws.get("README.md") else {
        return vec![violation("README.md", "README.md missing".into())];
    };
    let sh = bin.shadows();
    let mut out = Vec::new();

    let mut subs = cli_subcommands(&bin.text, &sh);
    subs.sort();
    subs.dedup();
    if subs.is_empty() {
        out.push(violation(
            CLI_BIN,
            "could not parse any subcommand from `match cmd.as_str()`".into(),
        ));
    }
    for sub in &subs {
        let documented = readme
            .text
            .lines()
            .any(|l| l.contains("genomicsbench") && word_on_line(l, sub));
        if !documented {
            out.push(violation(
                "README.md",
                format!("subcommand `{sub}` is not shown on any `genomicsbench …` line"),
            ));
        }
    }

    let mut flags: Vec<&str> = string_literals(&bin.text, &sh.code)
        .into_iter()
        .map(|(_, s)| s)
        .filter(|s| is_long_flag(s))
        .collect();
    flags.sort_unstable();
    flags.dedup();
    for flag in flags {
        if !flag_documented(&readme.text, flag) {
            out.push(violation(
                "README.md",
                format!("flag `{flag}` (accepted by the CLI) is never mentioned"),
            ));
        }
    }
    out
}

// --- dp-engine-help ----------------------------------------------------

/// The module holding `prepare_dp`, the engine-aware kernel dispatch.
const KERNELS_MOD: &str = "crates/suite/src/kernels/mod.rs";

/// Kernels with an engine-aware `prepare_dp` arm: inside the
/// `fn prepare_dp` block, every line that both names a `KernelId::`
/// variant and calls `prepare_with` with the `engine` value. Returned
/// lowercase — the spelling the CLI and manifests use.
fn dp_engine_kernels(sh: &Shadows) -> Vec<String> {
    let Some(pos) = sh.code.find("fn prepare_dp") else {
        return Vec::new();
    };
    let Some(block) = brace_block(sh, pos) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in block.lines() {
        if !(line.contains("prepare_with") && word_on_line(line, "engine")) {
            continue;
        }
        let Some(at) = line.find("KernelId::") else {
            continue;
        };
        let rest = &line[at + "KernelId::".len()..];
        let end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        if end > 0 {
            out.push(rest[..end].to_ascii_lowercase());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The `--dp-engine` description paragraph of the CLI usage text: the
/// first line whose trimmed text starts with `--dp-engine` (synopsis
/// lines like `[--dp-engine E]` start with `genomicsbench`, so they
/// don't match), plus its continuation lines up to the next flag or
/// quoted-subcommand paragraph.
fn dp_engine_paragraph(cli_text: &str) -> Option<String> {
    let mut lines = cli_text.lines();
    let first = lines.find(|l| l.trim_start().starts_with("--dp-engine"))?;
    let mut para = first.to_string();
    for l in lines {
        let t = l.trim_start();
        if t.is_empty() || t.starts_with("--") || t.starts_with('\'') || t.starts_with('"') {
            break;
        }
        para.push('\n');
        para.push_str(l);
    }
    Some(para)
}

/// Every kernel `prepare_dp` dispatches by engine must be named in the
/// `--dp-engine` help paragraph — porting a kernel onto the engine
/// layer without telling the user it exists leaves the flag's roster
/// silently stale.
pub fn dp_engine_help(ws: &Workspace) -> Vec<Violation> {
    let violation = |file: &str, msg: String| Violation {
        rule: "dp-engine-help",
        file: file.into(),
        line: 0,
        msg,
    };
    let Some(kernels_mod) = ws.get(KERNELS_MOD) else {
        return vec![violation(KERNELS_MOD, "kernel table module missing".into())];
    };
    let Some(bin) = ws.get(CLI_BIN) else {
        return vec![violation(CLI_BIN, "CLI binary source missing".into())];
    };
    let kernels = dp_engine_kernels(kernels_mod.shadows());
    if kernels.is_empty() {
        return vec![violation(
            KERNELS_MOD,
            "could not parse any engine-aware arm from `fn prepare_dp`".into(),
        )];
    }
    // The usage text is a string literal, so the paragraph comes from
    // the raw source, not the code shadow.
    let Some(para) = dp_engine_paragraph(&bin.text) else {
        return vec![violation(
            CLI_BIN,
            "usage text has no `--dp-engine` description paragraph".into(),
        )];
    };
    kernels
        .iter()
        .filter(|k| !word_on_line(&para, k))
        .map(|k| {
            violation(
                CLI_BIN,
                format!(
                    "kernel `{k}` has an engine-aware `prepare_dp` arm but is not named \
                     in the `--dp-engine` help paragraph"
                ),
            )
        })
        .collect()
}

// --- marker-attached ---------------------------------------------------

/// Every analyzer marker comment must be an own-line comment directly
/// above a `fn` item — attributes and further comment lines may sit in
/// between, anything else strands the marker where `cargo xtask
/// analyze` will never see it.
pub fn marker_attached(ws: &Workspace) -> Vec<Violation> {
    use crate::parse::{marker_on, marker_phrase_on};
    let mut out = Vec::new();
    for f in ws.rust_sources() {
        let sh = f.shadows();
        let code = sh.code_lines();
        let comments = sh.comment_lines();
        for (i, comment) in comments.iter().enumerate() {
            if !marker_phrase_on(comment) {
                continue;
            }
            let code_line = code.get(i).copied().unwrap_or("");
            let mut ok = marker_on(comment, code_line).is_some();
            if ok {
                // Walk down to the next effective code line; it must
                // declare a `fn`.
                ok = false;
                for j in i + 1..code.len() {
                    let t = code[j].trim();
                    if t.is_empty() {
                        continue;
                    }
                    if t.starts_with("#[") || t.starts_with("#![") {
                        continue;
                    }
                    ok = crate::parse::fn_decl_name(code[j]).is_some();
                    break;
                }
            }
            if !ok {
                out.push(Violation {
                    rule: "marker-attached",
                    file: f.path.clone(),
                    line: i + 1,
                    msg: "analyzer marker (`xtask: hot` / `PANIC-FREE:` / `ALLOC-OK:`) is \
                          not attached to a function item: it must be an own-line comment \
                          directly above a `fn` declaration (attributes may intervene)"
                        .into(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files.iter().map(|(p, t)| SourceFile::new(*p, *t)).collect(),
        }
    }

    #[test]
    fn safety_comment_required_and_honored() {
        let bad = ws(&[("crates/x/src/a.rs", "fn f() { unsafe { g() } }\n")]);
        let v = safety_comments(&bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "safety-comments");
        assert_eq!(v[0].line, 1);

        let good = ws(&[(
            "crates/x/src/a.rs",
            "// SAFETY: g has no preconditions here.\nfn f() { unsafe { g() } }\n",
        )]);
        assert!(safety_comments(&good).is_empty());

        // Signature form: justification on the following line.
        let sig = ws(&[(
            "crates/x/src/a.rs",
            "unsafe fn f() {\n    // SAFETY: caller upholds the contract.\n    unsafe { g() }\n}\n",
        )]);
        assert!(safety_comments(&sig).is_empty());
    }

    #[test]
    fn safety_comment_in_string_does_not_count_and_unsafe_in_comment_is_ignored() {
        let tricky = ws(&[(
            "crates/x/src/a.rs",
            "let s = \"SAFETY: not a comment\";\nfn f() { unsafe { g() } }\n",
        )]);
        assert_eq!(safety_comments(&tricky).len(), 1);

        let commented = ws(&[("crates/x/src/a.rs", "// unsafe is discussed here only\n")]);
        assert!(safety_comments(&commented).is_empty());
    }

    #[test]
    fn relaxed_only_in_allowlist() {
        let bad = ws(&[(
            "crates/suite/src/pool.rs",
            "c.fetch_add(1, Ordering::Relaxed);\n",
        )]);
        let v = relaxed_allowlist(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-allowlist");

        let allowed = ws(&[
            ("crates/obs/src/mem.rs", "x.load(Ordering::Relaxed);\n"),
            ("crates/obs/src/pool.rs", "x.load(Ordering::Relaxed);\n"),
            ("crates/loom/src/sync.rs", "Ordering::Relaxed\n"),
            ("crates/x/src/a.rs", "// Ordering::Relaxed in a comment\n"),
            ("crates/x/src/b.rs", "x.load(Ordering::SeqCst);\n"),
        ]);
        assert!(relaxed_allowlist(&allowed).is_empty());
    }

    fn schema_files(readme: &str, changes: &str) -> Workspace {
        ws(&[
            (
                "crates/obs/src/manifest.rs",
                "pub const SCHEMA_VERSION: &str = \"9.7\";\n",
            ),
            ("README.md", readme),
            ("CHANGES.md", changes),
        ])
    }

    #[test]
    fn schema_version_cross_checked_against_docs() {
        let good = schema_files("manifest schema 9.7 here\n", "schema bumped to 9.7\n");
        assert!(schema_version(&good).is_empty());

        let stale = schema_files("manifest schema 9.6 here\n", "schema bumped to 9.7\n");
        let v = schema_version(&stale);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].file, "README.md");

        // The literal on a line that doesn't mention "schema" is drift.
        let unrelated = schema_files("version 9.7 of the paper\n", "schema 9.7\n");
        assert_eq!(schema_version(&unrelated).len(), 1);
    }

    fn substrate_files(readme: &str, changes: &str) -> Workspace {
        ws(&[
            (
                "crates/substrate/src/lib.rs",
                "pub const SUBSTRATE_SCHEMA: u32 = 3;\n",
            ),
            ("README.md", readme),
            ("CHANGES.md", changes),
        ])
    }

    #[test]
    fn substrate_schema_cross_checked_against_docs() {
        let good = substrate_files(
            "substrate cache entries (schema v3)\n",
            "substrate schema: 3\n",
        );
        assert!(substrate_schema(&good).is_empty());

        let stale = substrate_files("substrate schema 2 here\n", "substrate schema 3\n");
        let v = substrate_schema(&stale);
        assert_eq!(v.len(), 1);
        assert_eq!(
            (v[0].rule, v[0].file.as_str()),
            ("substrate-schema", "README.md")
        );

        // "substrate" and the digit on the same line, but the digit
        // belongs to the manifest version — not a substrate mention.
        let decoy = substrate_files(
            "manifest schema 3.4 plus a substrate cache\n",
            "substrate schema 3\n",
        );
        assert_eq!(substrate_schema(&decoy).len(), 1);

        // Missing declaration is itself a violation.
        let missing = ws(&[("README.md", "substrate schema 3\n")]);
        assert_eq!(substrate_schema(&missing).len(), 1);
    }

    const KERNELS_OK: &str = r#"
pub enum KernelId {
    Fmi,
    Bsw,
}
impl KernelId {
    pub const ALL: [KernelId; 2] = [KernelId::Fmi, KernelId::Bsw];

    pub fn work_unit(self) -> &'static str {
        match self {
            KernelId::Fmi => "queries",
            KernelId::Bsw => "cells",
        }
    }
}
"#;

    #[test]
    fn kernel_table_catches_unregistered_variant() {
        let good = ws(&[("crates/suite/src/kernels/mod.rs", KERNELS_OK)]);
        assert!(kernel_table(&good).is_empty());

        let missing = KERNELS_OK.replace("[KernelId::Fmi, KernelId::Bsw]", "[KernelId::Fmi]");
        let v = kernel_table(&ws(&[("crates/suite/src/kernels/mod.rs", &missing)]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("Bsw") && v[0].msg.contains("ALL"));

        let no_unit = KERNELS_OK.replace("            KernelId::Bsw => \"cells\",\n", "");
        let v = kernel_table(&ws(&[("crates/suite/src/kernels/mod.rs", &no_unit)]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("work_unit"));
    }

    #[test]
    fn bench_ci_requires_workflow_wiring() {
        let files = [
            (
                "crates/bench/Cargo.toml",
                "[[bench]]\nname = \"kernels\"\nharness = false\n\n[[bench]]\nname = \"ablations\"\nharness = false\n",
            ),
            (
                ".github/workflows/ci.yml",
                "run: cargo bench --bench kernels --no-run\n",
            ),
        ];
        let v = bench_ci(&ws(&files));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("ablations"));

        let wired = [
            files[0],
            (
                ".github/workflows/ci.yml",
                "run: cargo bench --bench kernels --bench ablations --no-run\n",
            ),
        ];
        assert!(bench_ci(&ws(&wired)).is_empty());
    }

    #[test]
    fn clippy_allows_need_justification() {
        let bad = ws(&[(
            "crates/x/src/a.rs",
            "#[allow(clippy::too_many_arguments)]\nfn f() {}\n",
        )]);
        let v = clippy_allow_justified(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "clippy-allow-justified");

        let good = ws(&[(
            "crates/x/src/a.rs",
            "// Mirrors the 10-register SIMD kernel signature.\n#[allow(clippy::too_many_arguments)]\nfn f() {}\n",
        )]);
        assert!(clippy_allow_justified(&good).is_empty());

        let inline = ws(&[(
            "crates/x/src/a.rs",
            "#[allow(dead_code)] // kept for the ffi table layout\nfn f() {}\n",
        )]);
        assert!(clippy_allow_justified(&inline).is_empty());
    }

    #[test]
    fn unsafe_hygiene_checks_crate_roots() {
        let bad = ws(&[
            ("crates/x/Cargo.toml", "[package]\nname = \"x\"\n"),
            ("crates/x/src/lib.rs", "pub fn f() {}\n"),
        ]);
        let v = unsafe_hygiene(&bad);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("forbid"));

        let with_unsafe = ws(&[
            ("crates/x/Cargo.toml", "[package]\nname = \"x\"\n"),
            ("crates/x/src/lib.rs", "#![deny(unsafe_code)]\npub mod a;\n"),
            (
                "crates/x/src/a.rs",
                "// SAFETY: test fixture.\npub fn f() { unsafe { g() } }\n",
            ),
        ]);
        let v = unsafe_hygiene(&with_unsafe);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("unsafe_op_in_unsafe_fn"));

        let clean = ws(&[
            ("crates/x/Cargo.toml", "[package]\nname = \"x\"\n"),
            ("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n"),
        ]);
        assert!(unsafe_hygiene(&clean).is_empty());
    }

    const PIPELINE_OK: &str = r#"
fn helper() { stage(recorder, "rg:index", || 1); }

pub fn reference_guided_traced(recorder: &dyn Recorder) {
    let root = RootSpan::enter(recorder, "rg");
    let a = stage(recorder, "rg:index", || 1);
    let b = stage(recorder, "rg:map", || 2);
    root.exit();
}

pub fn denovo_polish_traced(recorder: &dyn Recorder) {
    // Same names as reference_guided_traced: fine, different function.
    let a = stage(recorder, "rg:index", || 1);
}
"#;

    #[test]
    fn traced_stage_names_must_be_unique_per_function() {
        let good = ws(&[("crates/suite/src/pipelines.rs", PIPELINE_OK)]);
        assert!(
            traced_stages(&good).is_empty(),
            "{:?}",
            traced_stages(&good)
        );

        // A duplicate inside one *_traced function fires.
        let dup = PIPELINE_OK.replace(
            "stage(recorder, \"rg:map\", || 2)",
            "stage(recorder, \"rg:index\", || 2)",
        );
        let v = traced_stages(&ws(&[("crates/suite/src/pipelines.rs", &dup)]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "traced-stages");
        assert!(v[0].msg.contains("rg:index") && v[0].msg.contains("reference_guided_traced"));

        // A stage colliding with the root frame fires too.
        let root_clash = PIPELINE_OK.replace(
            "stage(recorder, \"rg:map\", || 2)",
            "stage(recorder, \"rg\", || 2)",
        );
        let v = traced_stages(&ws(&[("crates/suite/src/pipelines.rs", &root_clash)]));
        assert_eq!(v.len(), 1, "{v:?}");

        // A stage call with no literal name on its line fires.
        let unnamed = PIPELINE_OK.replace(
            "stage(recorder, \"rg:map\", || 2)",
            "stage(recorder, name, || 2)",
        );
        let v = traced_stages(&ws(&[("crates/suite/src/pipelines.rs", &unnamed)]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("no string-literal name"));

        // Files outside crates/suite are not in scope.
        let elsewhere = ws(&[(
            "crates/obs/src/agg.rs",
            &PIPELINE_OK.replace(
                "stage(recorder, \"rg:map\", || 2)",
                "stage(recorder, \"rg:index\", || 2)",
            ),
        )]);
        assert!(traced_stages(&elsewhere).is_empty());
    }

    #[test]
    fn traced_stage_lint_ignores_commented_and_stringed_calls() {
        let tricky = r#"
pub fn metagenomic_abundance_traced(recorder: &dyn Recorder) {
    // stage(recorder, "mg:index", || 1); — commented out, not a span
    let doc = "stage(recorder, \"mg:index\", || 1)";
    let a = stage(recorder, "mg:index", || 1);
    let b = stage(recorder, "mg:classify", || 2);
}
"#;
        let v = traced_stages(&ws(&[("crates/suite/src/pipelines.rs", tricky)]));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn the_real_pipelines_pass_the_traced_stage_lint() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../suite/src/pipelines.rs"
        ))
        .expect("pipelines.rs readable");
        let v = traced_stages(&ws(&[("crates/suite/src/pipelines.rs", &text)]));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn traced_stage_names_must_be_collapsed_stack_safe() {
        // `;` is the path separator: a name containing it would split
        // into two frames after sanitization.
        let semi = PIPELINE_OK.replace(
            "stage(recorder, \"rg:map\", || 2)",
            "stage(recorder, \"rg;map\", || 2)",
        );
        let v = traced_stages(&ws(&[("crates/suite/src/pipelines.rs", &semi)]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("rg;map") && v[0].msg.contains("collapsed-stack"));

        // Whitespace is the stack/value separator in flame files.
        let space = PIPELINE_OK.replace(
            "stage(recorder, \"rg:map\", || 2)",
            "stage(recorder, \"rg map\", || 2)",
        );
        let v = traced_stages(&ws(&[("crates/suite/src/pipelines.rs", &space)]));
        assert_eq!(v.len(), 1, "{v:?}");

        // A root frame with a bad name fires too.
        let root = PIPELINE_OK.replace(
            "RootSpan::enter(recorder, \"rg\")",
            "RootSpan::enter(recorder, \"r g\")",
        );
        let v = traced_stages(&ws(&[("crates/suite/src/pipelines.rs", &root)]));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    const CLI_OK: &str = r#"
fn run(args: &[String]) -> Result<(), String> {
    let cmd = args[0].clone();
    match cmd.as_str() {
        "list" => {
            let x = parse(&["--tier"]);
            Ok(())
        }
        "run" | "profile" => {
            if args.iter().any(|a| a == "--flame-svg") {
                render();
            }
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}
"#;

    const README_OK: &str = "\
# usage\n\
\n\
    genomicsbench list\n\
    genomicsbench run <kernel> --tier tiny\n\
    genomicsbench profile <kernel> --flame-svg out.svg\n";

    fn cli_ws(cli: &str, readme: &str) -> Workspace {
        ws(&[
            ("crates/suite/src/bin/genomicsbench.rs", cli),
            ("README.md", readme),
        ])
    }

    #[test]
    fn cli_readme_sync_passes_when_everything_is_documented() {
        let v = cli_readme_sync(&cli_ws(CLI_OK, README_OK));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cli_readme_sync_catches_undocumented_subcommands_and_flags() {
        // Drop the `profile` synopsis line: `profile` and `--flame-svg`
        // both lose their documentation.
        let trimmed = README_OK
            .lines()
            .filter(|l| !l.contains("profile"))
            .collect::<Vec<_>>()
            .join("\n");
        let v = cli_readme_sync(&cli_ws(CLI_OK, &trimmed));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "cli-readme-sync"));
        assert!(v.iter().any(|x| x.msg.contains("`profile`")));
        assert!(v.iter().any(|x| x.msg.contains("--flame-svg")));

        // The subcommand must sit on a `genomicsbench …` line — prose
        // mentioning the word elsewhere doesn't count.
        let prose = "the profile of this suite is discussed here\n\
                     genomicsbench list\n\
                     genomicsbench run --tier --flame-svg\n";
        let v = cli_readme_sync(&cli_ws(CLI_OK, prose));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("`profile`"));
    }

    #[test]
    fn cli_readme_sync_is_not_fooled_by_literal_shape() {
        // The unknown-command error literal is not an arm pattern, and
        // `--flame-svg` in the README cannot stand in for `--flame`.
        let cli = CLI_OK.replace("\"--tier\"", "\"--flame\"");
        let readme = README_OK.replace("--tier tiny", "--flame-svg x");
        let v = cli_readme_sync(&cli_ws(&cli, &readme));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("`--flame`"), "{v:?}");
        assert!(
            !v.iter().any(|x| x.msg.contains("unknown command")),
            "error-string literal leaked into the subcommand list: {v:?}"
        );
    }

    #[test]
    fn the_real_cli_passes_the_readme_sync_lint() {
        let read = |rel: &str| {
            std::fs::read_to_string(format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR")))
                .unwrap_or_else(|e| panic!("{rel} readable: {e}"))
        };
        let real = ws(&[
            (
                "crates/suite/src/bin/genomicsbench.rs",
                &read("crates/suite/src/bin/genomicsbench.rs"),
            ),
            ("README.md", &read("README.md")),
        ]);
        let v = cli_readme_sync(&real);
        assert!(v.is_empty(), "{v:?}");
    }

    const PREPARE_DP_OK: &str = r#"
pub fn prepare_dp(id: KernelId, size: DatasetSize, engine: DpEngine) -> Box<dyn Kernel> {
    match id {
        KernelId::Bsw => Box::new(bsw::BswKernel::prepare_with(size, engine)),
        KernelId::Spoa => Box::new(spoa::SpoaKernel::prepare_with(size, engine)),
        _ => prepare(id, size),
    }
}
"#;

    const DP_USAGE_OK: &str = r#"
const USAGE: &str = "usage:
  genomicsbench run [kernels|all] [--dp-engine E]

    --dp-engine picks the execution engine of the DP-motif kernels —
      bsw, spoa: 'simd' (default) or 'scalar'.
    --flame writes a collapsed-stack file.
";
"#;

    fn dp_ws(kernels: &str, cli: &str) -> Workspace {
        ws(&[
            ("crates/suite/src/kernels/mod.rs", kernels),
            ("crates/suite/src/bin/genomicsbench.rs", cli),
        ])
    }

    #[test]
    fn dp_engine_help_passes_when_roster_is_current() {
        let v = dp_engine_help(&dp_ws(PREPARE_DP_OK, DP_USAGE_OK));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn dp_engine_help_catches_a_kernel_missing_from_the_paragraph() {
        // A newly ported kernel whose help text still lists the old
        // roster: the `--dp-engine` paragraph never mentions `spoa`.
        let stale = DP_USAGE_OK.replace("bsw, spoa:", "bsw:");
        let v = dp_engine_help(&dp_ws(PREPARE_DP_OK, &stale));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "dp-engine-help");
        assert!(v[0].msg.contains("`spoa`"));

        // The synopsis `[--dp-engine E]` alone is not a description
        // paragraph.
        let no_para = r#"
const USAGE: &str = "usage:
  genomicsbench run [kernels|all] [--dp-engine E]
";
"#;
        let v = dp_engine_help(&dp_ws(PREPARE_DP_OK, no_para));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("no `--dp-engine`"));
    }

    #[test]
    fn dp_engine_help_only_counts_engine_aware_arms() {
        // `Phmm` is in the match but takes the engine-less `prepare`
        // path, so the paragraph need not (and does not) name it.
        let mixed = PREPARE_DP_OK.replace(
            "        _ => prepare(id, size),",
            "        KernelId::Phmm => prepare(id, size),\n        _ => prepare(id, size),",
        );
        let v = dp_engine_help(&dp_ws(&mixed, DP_USAGE_OK));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn the_real_cli_passes_the_dp_engine_help_lint() {
        let read = |rel: &str| {
            std::fs::read_to_string(format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR")))
                .unwrap_or_else(|e| panic!("{rel} readable: {e}"))
        };
        let real = ws(&[
            (
                "crates/suite/src/kernels/mod.rs",
                &read("crates/suite/src/kernels/mod.rs"),
            ),
            (
                "crates/suite/src/bin/genomicsbench.rs",
                &read("crates/suite/src/bin/genomicsbench.rs"),
            ),
        ]);
        let v = dp_engine_help(&real);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn run_all_aggregates() {
        let bad = ws(&[("crates/x/src/a.rs", "fn f() { unsafe { g() } }\n")]);
        let v = run_all(&bad);
        assert!(v.iter().any(|x| x.rule == "safety-comments"));
        // Missing manifest/kernels/bench/CLI files also surface as findings.
        assert!(v.iter().any(|x| x.rule == "schema-version"));
        assert!(v.iter().any(|x| x.rule == "kernel-table"));
        assert!(v.iter().any(|x| x.rule == "bench-ci"));
        assert!(v.iter().any(|x| x.rule == "cli-readme-sync"));
    }

    #[test]
    fn attached_markers_pass_the_marker_lint() {
        let good = ws(&[(
            "crates/x/src/a.rs",
            "// xtask: hot\n#[inline(always)]\nfn hot_loop() {}\n\n\
             // PANIC-FREE: the caller clamps the index.\n/// Docs between are fine.\npub fn pick(v: &[u8], i: usize) -> u8 { v[i] }\n\n\
             // ALLOC-OK: per-task scratch.\nfn scratch() -> Vec<u8> { vec![0] }\n",
        )]);
        assert!(
            marker_attached(&good).is_empty(),
            "{:?}",
            marker_attached(&good)
        );
    }

    #[test]
    fn stranded_markers_are_flagged() {
        // Trailing a statement: the analyzer would never see it.
        let trailing = ws(&[(
            "crates/x/src/a.rs",
            "fn f() {\n    let x = 1; // PANIC-FREE: stranded on a code line\n}\n",
        )]);
        let v = marker_attached(&trailing);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "marker-attached");
        assert_eq!(v[0].line, 2);

        // Floating above a struct instead of a fn.
        let floating = ws(&[("crates/x/src/a.rs", "// xtask: hot\nstruct NotAFn;\n")]);
        assert_eq!(marker_attached(&floating).len(), 1);

        // Dangling at end of file.
        let dangling = ws(&[(
            "crates/x/src/a.rs",
            "fn f() {}\n// ALLOC-OK: nothing follows\n",
        )]);
        assert_eq!(marker_attached(&dangling).len(), 1);
    }

    #[test]
    fn marker_lint_ignores_prose_mentions_and_strings() {
        let prose = ws(&[(
            "crates/x/src/a.rs",
            "//! The analyzer's `PANIC-FREE:` marker is documented here.\n\
             fn f() { let s = \"// xtask: hot\"; use_(s); }\n",
        )]);
        assert!(
            marker_attached(&prose).is_empty(),
            "{:?}",
            marker_attached(&prose)
        );
    }
}
