//! `cargo xtask` — repo-local automation for GenomicsBench-rs.
//!
//! Subcommands:
//!
//! * `lint` — run the repo's static policy checks (safety comments,
//!   relaxed-ordering allowlist, schema-version/doc agreement, kernel
//!   registration table, bench-CI wiring, justified lint allows,
//!   per-crate unsafe hygiene, unique collapsed-stack-safe traced-stage
//!   names, CLI/README surface sync). Exits non-zero with one line per
//!   violation. See `src/lints.rs` for the rules and DESIGN.md
//!   ("Concurrency & safety invariants") for the policy.
//!
//! Wired up as a cargo alias in `.cargo/config.toml`, so the entry
//! point is `cargo xtask lint`.

#![forbid(unsafe_code)]

mod lexer;
mod lints;

use lints::{SourceFile, Workspace};
use std::path::{Path, PathBuf};

/// File extensions the lints read.
const TRACKED_EXT: &[&str] = &["rs", "toml", "yml", "yaml", "md"];

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "data"];

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = repo_root();
            let ws = load_workspace(&root);
            let violations = lints::run_all(&ws);
            if violations.is_empty() {
                println!(
                    "xtask lint: OK ({} files, 11 rules, 0 violations)",
                    ws.files.len()
                );
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("usage: cargo xtask <command>\n\ncommands:\n  lint   run repo policy checks");
            if other.is_some() {
                std::process::exit(2);
            }
        }
    }
}

/// The workspace root: two levels above this crate's manifest dir.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels under the repo root")
        .to_path_buf()
}

/// Loads every tracked file under `root` into an in-memory [`Workspace`]
/// with repo-relative, forward-slash paths.
fn load_workspace(root: &Path) -> Workspace {
    let mut files = Vec::new();
    walk(root, root, &mut files);
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Workspace { files }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') || name == ".github" {
                walk(root, &path, out);
            }
            continue;
        }
        let tracked = path
            .extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| TRACKED_EXT.contains(&e));
        if !tracked {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // non-UTF8 files carry nothing lintable
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(SourceFile { path: rel, text });
    }
}
