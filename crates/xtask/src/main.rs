//! `cargo xtask` — repo-local automation for GenomicsBench-rs.
//!
//! Subcommands:
//!
//! * `lint` — run the repo's token-level policy checks (safety
//!   comments, relaxed-ordering allowlist, schema-version/doc
//!   agreement, kernel registration table, bench-CI wiring, justified
//!   lint allows, per-crate unsafe hygiene, unique collapsed-stack-safe
//!   traced-stage names, CLI/README surface sync, attached analyzer
//!   markers). Exits non-zero with one line per violation. See
//!   `src/lints.rs` for the rules and DESIGN.md for the policy.
//! * `analyze` — run the call-graph reachability rules (panic-freedom
//!   of kernel entry paths, allocation-freedom of `xtask: hot` loops,
//!   scalar/SIMD float-determinism). `analyze --dead-pub` instead
//!   prints the informational unused-`pub fn` report and always exits
//!   zero. See `src/analyze.rs` and DESIGN.md ("Static analysis").
//! * `check` — `lint` + `analyze` over a single workspace load.
//!
//! Wired up as a cargo alias in `.cargo/config.toml`, so the entry
//! point is `cargo xtask lint` (etc.).

#![forbid(unsafe_code)]

mod analyze;
mod callgraph;
mod lexer;
mod lints;
mod parse;
mod workspace;

use lints::Violation;
use workspace::{repo_root, Workspace};

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let ws = Workspace::load(&repo_root());
            exit_on(run_lint(&ws), "lint");
        }
        Some("analyze") => {
            let ws = Workspace::load(&repo_root());
            if args.any(|a| a == "--dead-pub") {
                print!("{}", analyze::dead_pub_report(&ws));
                return;
            }
            exit_on(run_analyze(&ws), "analyze");
        }
        Some("check") => {
            // One load, both tools — shadows are computed once per file
            // and shared (see src/workspace.rs).
            let ws = Workspace::load(&repo_root());
            let mut violations = run_lint(&ws);
            violations.extend(run_analyze(&ws));
            exit_on(violations, "check");
        }
        other => {
            eprintln!(
                "usage: cargo xtask <command>\n\ncommands:\n  \
                 lint                 run repo policy checks\n  \
                 analyze              run call-graph reachability checks\n  \
                 analyze --dead-pub   report pub fns with no in-workspace callers\n  \
                 check                lint + analyze over one workspace load"
            );
            if other.is_some() {
                std::process::exit(2);
            }
        }
    }
}

/// Runs the lint rules, printing the OK line on success.
fn run_lint(ws: &Workspace) -> Vec<Violation> {
    let violations = lints::run_all(ws);
    if violations.is_empty() {
        println!(
            "xtask lint: OK ({} files, 12 rules, 0 violations)",
            ws.files.len()
        );
    }
    violations
}

/// Runs the analyze rules, printing the OK line on success.
fn run_analyze(ws: &Workspace) -> Vec<Violation> {
    let violations = analyze::run_all(ws);
    if violations.is_empty() {
        let (fns, edges) = analyze::graph_stats(ws);
        println!(
            "xtask analyze: OK ({} files, {fns} functions, {edges} call edges, 3 rules, 0 violations)",
            ws.files.len()
        );
    }
    violations
}

/// Prints violations and exits non-zero when any exist.
fn exit_on(violations: Vec<Violation>, tool: &str) {
    if violations.is_empty() {
        return;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("xtask {tool}: {} violation(s)", violations.len());
    std::process::exit(1);
}
