//! A lightweight item/function/expression parser on top of the lexer
//! shadows — the grammar subset behind `cargo xtask analyze`.
//!
//! This is deliberately not a Rust parser (the sandbox has no `syn`).
//! It recognizes exactly what the call-graph rules need, operating
//! line-by-line over the *code shadow* (comments and string contents
//! already blanked, so none of the token scans below can be fooled by
//! prose or literals):
//!
//! * **function items** — `fn name` declarations with their body line
//!   span, found by brace-depth tracking; nested `fn`s are handled by a
//!   stack, and expressions are attributed to the innermost enclosing
//!   function (closures count as part of their enclosing `fn`);
//! * **call expressions** — `name(..)` (plain), `.name(..)` (method),
//!   `Path::name(..)` (path, with the path's root segment recorded),
//!   and `name!(..)` (macro). Keywords and `fn` declarations are not
//!   calls; a macro's *body* is opaque (its arguments are still scanned
//!   as expressions of the enclosing function);
//! * **panic sites** — `.unwrap()` / `.expect()`, panicking macros
//!   (`panic!`, `assert!`, `assert_eq!`, `assert_ne!`, `unreachable!`,
//!   `todo!`, `unimplemented!` — `debug_assert*` is excluded because it
//!   compiles out of release builds), and slice indexing `x[i]`
//!   (a `[` directly after an identifier, `]`, or `)`);
//! * **float features** per function — `mul_add` calls, `as f32` /
//!   `as f64` casts, and float reductions (`.sum()` / `.product()` on a
//!   line that names `f32`/`f64`) — the raw material of the engine-pair
//!   determinism rule;
//! * **markers** — own-line comments beginning `xtask: hot`,
//!   `PANIC-FREE:` or `ALLOC-OK:` attach to the next function item
//!   (attributes and further comments may sit between). Lint rule 12
//!   rejects markers that fail to attach.
//!
//! Functions inside `#[cfg(test)] mod … { … }` regions, and every file
//! under `tests/`, `benches/` or `examples/`, are parsed but flagged as
//! *harness* code: the analyze rules never root there, but their calls
//! still count as uses for the `--dead-pub` report.

use crate::lexer::word_on_line;
use crate::workspace::{SourceFile, Workspace};

/// How a call expression is written at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(..)`.
    Plain,
    /// `.name(..)` (also `.name::<T>(..)`).
    Method,
    /// `Path::name(..)`; [`Call::qualifier`] holds the path root.
    PathCall,
    /// `name!(..)` / `name![..]` / `name! {..}`.
    Macro,
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// The called name (last path segment for path calls).
    pub name: String,
    /// Syntactic shape at the call site.
    pub kind: CallKind,
    /// Root segment of a path call (`Vec` in `Vec::with_capacity`,
    /// `std` in `std::mem::take`); `None` otherwise.
    pub qualifier: Option<String>,
    /// 1-based source line.
    pub line: usize,
}

/// One potentially panicking expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// 1-based source line.
    pub line: usize,
    /// What fired: `.unwrap()`, `panic!`, `indexing`, ….
    pub what: String,
}

/// Float-expression features of one function, for the engine-pair
/// determinism rule. Each entry is a 1-based line number.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FloatProfile {
    /// `mul_add` call sites (fused multiply-add changes rounding).
    pub mul_add: Vec<usize>,
    /// `as f32` cast sites.
    pub f32_casts: Vec<usize>,
    /// `as f64` cast sites.
    pub f64_casts: Vec<usize>,
    /// Float `.sum()` / `.product()` reduction sites (association order).
    pub reductions: Vec<usize>,
}

/// The marker vocabulary the analyzer understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// `xtask: hot` — the function is a steady-state hot loop; the
    /// allocation rule roots here.
    Hot,
    /// `PANIC-FREE:` — the panic sites in this function are justified.
    PanicFree,
    /// `ALLOC-OK:` — this function may allocate (per-task setup);
    /// the allocation rule stops descending here.
    AllocOk,
}

/// One function-level marker comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// Which marker.
    pub kind: MarkerKind,
    /// 1-based line of the marker comment.
    pub line: usize,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Repo-relative file path.
    pub file: String,
    /// Function name.
    pub name: String,
    /// 1-based declaration line.
    pub line: usize,
    /// 1-based last line of the body.
    pub end_line: usize,
    /// Declared `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Test/bench/example code — never an analyze root.
    pub harness: bool,
    /// Markers attached above the declaration.
    pub markers: Vec<Marker>,
    /// Call expressions in the body (and header line).
    pub calls: Vec<Call>,
    /// Potentially panicking expressions in the body.
    pub panic_sites: Vec<PanicSite>,
    /// Float-expression features of the body.
    pub float: FloatProfile,
}

impl FnItem {
    /// Whether a marker of `kind` is attached to this function.
    pub fn has_marker(&self, kind: MarkerKind) -> bool {
        self.markers.iter().any(|m| m.kind == kind)
    }
}

/// Parses every Rust source of the workspace into function items.
pub fn parse_workspace(ws: &Workspace) -> Vec<FnItem> {
    let mut out = Vec::new();
    for f in ws.rust_sources() {
        out.extend(parse_file(f));
    }
    out
}

/// If `comment_line` is an own-line marker comment (its code shadow
/// `code_line` is blank and the comment content *begins* with a marker
/// phrase after the `//`/`///`/`//!` prefix), returns its kind.
/// Mid-sentence mentions in prose do not match.
pub fn marker_on(comment_line: &str, code_line: &str) -> Option<MarkerKind> {
    if !code_line.trim().is_empty() {
        return None;
    }
    let c = comment_line
        .trim_start()
        .trim_start_matches(['/', '!'])
        .trim_start();
    if c.starts_with("xtask: hot") {
        Some(MarkerKind::Hot)
    } else if c.starts_with("PANIC-FREE:") {
        Some(MarkerKind::PanicFree)
    } else if c.starts_with("ALLOC-OK:") {
        Some(MarkerKind::AllocOk)
    } else {
        None
    }
}

/// Does this comment line *mention* a marker phrase at comment start,
/// whether or not the line is a valid own-line marker? Lint rule 12
/// uses this to catch markers stranded on code lines.
pub fn marker_phrase_on(comment_line: &str) -> bool {
    let c = comment_line
        .trim_start()
        .trim_start_matches(['/', '!'])
        .trim_start();
    c.starts_with("xtask: hot") || c.starts_with("PANIC-FREE:") || c.starts_with("ALLOC-OK:")
}

/// A declaration line's `fn` name, with a word boundary on the left
/// (mirrors the helper `cargo xtask lint` uses).
pub fn fn_decl_name(code_line: &str) -> Option<&str> {
    let mut search = 0;
    while let Some(rel) = code_line[search..].find("fn ") {
        let at = search + rel;
        let bounded = at == 0
            || code_line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| !(c.is_ascii_alphanumeric() || c == '_'));
        if bounded {
            let rest = &code_line[at + 3..];
            let end = rest
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(rest.len());
            if end > 0 {
                return Some(&rest[..end]);
            }
        }
        search = at + 3;
    }
    None
}

/// Keywords an identifier scan must never read as a call.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "mut",
    "ref", "move", "fn", "pub", "use", "mod", "impl", "struct", "enum", "trait", "where", "unsafe",
    "dyn", "in", "as", "const", "static", "type", "crate", "super", "self", "Self", "async",
    "await", "box", "extern",
];

struct OpenFn {
    item: FnItem,
    /// Brace depth *inside* the body (body closes when depth drops
    /// below this).
    body_depth: usize,
}

/// Parses one file. See the module docs for the recognized subset.
pub fn parse_file(f: &SourceFile) -> Vec<FnItem> {
    let sh = f.shadows();
    let code = sh.code_lines();
    let comments = sh.comment_lines();
    let harness_file = ["/tests/", "/benches/", "/examples/"]
        .iter()
        .any(|d| f.path.contains(d));

    let mut done: Vec<FnItem> = Vec::new();
    let mut stack: Vec<OpenFn> = Vec::new();
    let mut pending_markers: Vec<Marker> = Vec::new();
    // A `fn` declaration whose opening `{` has not appeared yet.
    let mut pending_fn: Option<FnItem> = None;
    let mut depth = 0usize;
    // Depth at which a `#[cfg(test)] mod …` region opened.
    let mut test_mod_depth: Option<usize> = None;
    let mut cfg_test_pending = false;

    for (i, line) in code.iter().enumerate() {
        let lineno = i + 1;
        let comment = comments.get(i).copied().unwrap_or("");

        if let Some(kind) = marker_on(comment, line) {
            pending_markers.push(Marker { kind, line: lineno });
            continue;
        }
        let trimmed = line.trim();
        let is_attr = trimmed.starts_with("#[") || trimmed.starts_with("#![");
        if is_attr && trimmed.contains("cfg(test)") {
            cfg_test_pending = true;
        }

        // Item recognition happens before brace counting so a body that
        // opens on the declaration line is attributed correctly.
        if !is_attr {
            if let Some(name) = fn_decl_name(line) {
                if pending_fn.is_none() {
                    let harness = harness_file || test_mod_depth.is_some() || cfg_test_pending;
                    pending_fn = Some(FnItem {
                        file: f.path.clone(),
                        name: name.to_string(),
                        line: lineno,
                        end_line: lineno,
                        is_pub: word_on_line(line, "pub"),
                        harness,
                        markers: std::mem::take(&mut pending_markers),
                        calls: Vec::new(),
                        panic_sites: Vec::new(),
                        float: FloatProfile::default(),
                    });
                    cfg_test_pending = false;
                }
            } else if word_on_line(line, "mod") && cfg_test_pending && trimmed.contains('{') {
                test_mod_depth = Some(depth);
                cfg_test_pending = false;
            } else if !trimmed.is_empty() {
                // Plain code: any pending markers failed to attach (lint
                // rule 12's business); any other item resets cfg(test).
                pending_markers.clear();
                if pending_fn.is_none()
                    && (word_on_line(line, "struct")
                        || word_on_line(line, "enum")
                        || word_on_line(line, "impl")
                        || word_on_line(line, "use")
                        || word_on_line(line, "const")
                        || word_on_line(line, "static"))
                {
                    cfg_test_pending = false;
                }
            }
        }

        // A bodyless declaration (trait method signature) ends at `;`
        // before any `{`.
        if pending_fn.is_some() && trimmed.ends_with(';') && !trimmed.contains('{') {
            let mut item = pending_fn.take().expect("just checked");
            item.end_line = lineno;
            done.push(item);
        }

        // Expression scans, attributed after this line's `fn`-open (so a
        // one-line `fn f() { body }` owns its own body), but computed
        // from the full line — signatures contain no call expressions.
        let mut line_calls = Vec::new();
        let mut line_sites = Vec::new();
        if !is_attr {
            scan_calls(line, lineno, &mut line_calls);
            scan_indexing(line, lineno, &mut line_sites);
        }

        // Brace tracking, opening/closing functions as we go. A one-line
        // `fn f() { body }` opens *and* closes here, so line scans are
        // attributed to the innermost function closed on this line if
        // any — otherwise to the function still open at line end.
        let mut attributed = false;
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if let Some(item) = pending_fn.take() {
                        stack.push(OpenFn {
                            item,
                            body_depth: depth,
                        });
                    }
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while let Some(open) = stack.last() {
                        if depth < open.body_depth {
                            let mut closed = stack.pop().expect("non-empty").item;
                            closed.end_line = lineno;
                            if !attributed {
                                attribute_line(&mut closed, line, lineno, &line_calls, &line_sites);
                                attributed = true;
                            }
                            done.push(closed);
                        } else {
                            break;
                        }
                    }
                    if test_mod_depth.is_some_and(|d| depth <= d) {
                        test_mod_depth = None;
                    }
                }
                _ => {}
            }
        }

        if !attributed {
            if let Some(open) = stack.last_mut() {
                attribute_line(&mut open.item, line, lineno, &line_calls, &line_sites);
            }
        }
    }
    // Unterminated constructs (should not happen on rustc-clean code):
    // close whatever is open so nothing silently disappears.
    let last = code.len();
    if let Some(mut item) = pending_fn.take() {
        item.end_line = last;
        done.push(item);
    }
    while let Some(open) = stack.pop() {
        let mut item = open.item;
        item.end_line = last;
        done.push(item);
    }
    done.sort_by_key(|it| it.line);
    done
}

/// Folds one line's expression scans into the function that owns it.
fn attribute_line(
    item: &mut FnItem,
    line: &str,
    lineno: usize,
    line_calls: &[Call],
    line_sites: &[PanicSite],
) {
    for c in line_calls {
        match c.kind {
            CallKind::Method if c.name == "unwrap" || c.name == "expect" => {
                item.panic_sites.push(PanicSite {
                    line: lineno,
                    what: format!(".{}()", c.name),
                });
            }
            CallKind::Macro if PANIC_MACROS.contains(&c.name.as_str()) => {
                item.panic_sites.push(PanicSite {
                    line: lineno,
                    what: format!("{}!", c.name),
                });
            }
            _ => {}
        }
        if c.name == "mul_add" {
            item.float.mul_add.push(lineno);
        }
    }
    item.calls.extend(line_calls.iter().cloned());
    item.panic_sites.extend(line_sites.iter().cloned());
    if line.contains(" as f32") {
        item.float.f32_casts.push(lineno);
    }
    if line.contains(" as f64") {
        item.float.f64_casts.push(lineno);
    }
    let reduces = line.contains(".sum(")
        || line.contains(".sum::<")
        || line.contains(".product(")
        || line.contains(".product::<");
    if reduces && (word_on_line(line, "f32") || word_on_line(line, "f64")) {
        item.float.reductions.push(lineno);
    }
}

/// Macros that unconditionally (or on failure) panic in release builds.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

fn is_ident_char(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Scans one code-shadow line for call expressions.
fn scan_calls(line: &str, lineno: usize, out: &mut Vec<Call>) {
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if !(b[i] == b'_' || b[i].is_ascii_alphabetic()) {
            i += 1;
            continue;
        }
        // A full identifier run must start at a word boundary.
        if i > 0 && is_ident_char(b[i - 1]) {
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            continue;
        }
        let start = i;
        while i < b.len() && is_ident_char(b[i]) {
            i += 1;
        }
        let name = &line[start..i];
        if KEYWORDS.contains(&name) {
            continue;
        }
        // Declarations are not calls: the identifier directly follows
        // a word-bounded `fn`.
        let before = line[..start].trim_end();
        if before.ends_with("fn")
            && (before.len() == 2 || {
                let pre = before.as_bytes()[before.len() - 3];
                !is_ident_char(pre)
            })
        {
            continue;
        }
        let next = b.get(i).copied();
        let preceded_by_dot = start > 0 && b[start - 1] == b'.';
        let preceded_by_path = start >= 2 && &b[start - 2..start] == b"::";
        let is_call = match next {
            Some(b'(') => true,
            Some(b'!') => {
                // Macro call: `name!(`, `name![`, `name! {`.
                let after = b.get(i + 1).copied();
                matches!(after, Some(b'(') | Some(b'[') | Some(b'{'))
                    || (after == Some(b' ') && b.get(i + 2) == Some(&b'{'))
            }
            Some(b':') if b.get(i + 1) == Some(&b':') && b.get(i + 2) == Some(&b'<') => {
                // Turbofish: `name::<args>(…)` is a call in any position
                // (`forward_generic::<f32, P>(…)`, `.collect::<Vec<_>>()`);
                // `Type::<T>::assoc` is a path segment, not a call. Skip
                // the bracketed args and look for `(`.
                let mut k = i + 3;
                let mut angle = 1usize;
                while k < b.len() && angle > 0 {
                    match b[k] {
                        b'<' => angle += 1,
                        b'>' => angle -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                angle == 0 && b.get(k) == Some(&b'(')
            }
            _ => false,
        };
        if !is_call {
            continue;
        }
        if next == Some(b'!') {
            out.push(Call {
                name: name.to_string(),
                kind: CallKind::Macro,
                qualifier: None,
                line: lineno,
            });
            continue;
        }
        if preceded_by_dot {
            out.push(Call {
                name: name.to_string(),
                kind: CallKind::Method,
                qualifier: None,
                line: lineno,
            });
        } else if preceded_by_path {
            out.push(Call {
                name: name.to_string(),
                kind: CallKind::PathCall,
                qualifier: path_root(line, start),
                line: lineno,
            });
        } else {
            out.push(Call {
                name: name.to_string(),
                kind: CallKind::Plain,
                qualifier: None,
                line: lineno,
            });
        }
    }
}

/// The root segment of the path ending in `::` just before byte
/// `name_start` (`Vec` for `Vec::new`, `std` for `std::mem::take`).
fn path_root(line: &str, name_start: usize) -> Option<String> {
    let b = line.as_bytes();
    let mut end = name_start.checked_sub(2)?; // before the `::`
    loop {
        // The segment (or generic args `<…>`) before this `::`.
        let seg_end = end;
        let mut s = seg_end;
        while s > 0 && is_ident_char(b[s - 1]) {
            s -= 1;
        }
        if s == seg_end {
            return None; // `<T>::name` and friends: give up, unresolved
        }
        // Is there another `::` before this segment?
        if s >= 2 && &b[s - 2..s] == b"::" {
            end = s - 2;
            continue;
        }
        return Some(line[s..seg_end].to_string());
    }
}

/// Scans one code-shadow line for slice-indexing sites: a `[` directly
/// after an identifier, `]` or `)` — which excludes array literals
/// (`= [`), types (`: [u8; 4]`), slice patterns (`let [a, b]`) and
/// macro brackets (`vec![`).
fn scan_indexing(line: &str, lineno: usize, out: &mut Vec<PanicSite>) {
    let b = line.as_bytes();
    for (pos, &ch) in b.iter().enumerate() {
        if ch != b'[' || pos == 0 {
            continue;
        }
        let prev = b[pos - 1];
        if !(is_ident_char(prev) || prev == b']' || prev == b')') {
            continue;
        }
        if is_ident_char(prev) {
            // `let [a, b] = …` / `for [x] in …`: the "identifier" before
            // the bracket may be a keyword, which is not a place value.
            let mut s = pos - 1;
            while s > 0 && is_ident_char(b[s - 1]) {
                s -= 1;
            }
            if KEYWORDS.contains(&&line[s..pos]) {
                continue;
            }
        }
        out.push(PanicSite {
            line: lineno,
            what: "indexing".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_file(&SourceFile::new("crates/x/src/a.rs", src))
    }

    #[test]
    fn finds_functions_with_spans_and_visibility() {
        let items = parse("pub fn outer() {\n    inner();\n}\n\nfn inner() {\n    work(1);\n}\n");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "outer");
        assert!(items[0].is_pub);
        assert_eq!((items[0].line, items[0].end_line), (1, 3));
        assert_eq!(items[1].name, "inner");
        assert!(!items[1].is_pub);
    }

    #[test]
    fn nested_fns_attribute_calls_to_the_innermost() {
        let items =
            parse("fn outer() {\n    fn helper() {\n        deep();\n    }\n    shallow();\n}\n");
        let outer = items.iter().find(|i| i.name == "outer").unwrap();
        let helper = items.iter().find(|i| i.name == "helper").unwrap();
        assert!(helper.calls.iter().any(|c| c.name == "deep"));
        assert!(outer.calls.iter().any(|c| c.name == "shallow"));
        assert!(!outer.calls.iter().any(|c| c.name == "deep"));
    }

    #[test]
    fn call_kinds_and_qualifiers() {
        let items = parse(
            "fn f() {\n    plain();\n    x.method();\n    Vec::with_capacity(4);\n    std::mem::take(&mut x);\n    vec![1];\n    it.collect::<Vec<_>>();\n}\n",
        );
        let calls = &items[0].calls;
        let get = |n: &str| calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(get("plain").kind, CallKind::Plain);
        assert_eq!(get("method").kind, CallKind::Method);
        assert_eq!(get("with_capacity").kind, CallKind::PathCall);
        assert_eq!(get("with_capacity").qualifier.as_deref(), Some("Vec"));
        assert_eq!(get("take").qualifier.as_deref(), Some("std"));
        assert_eq!(get("vec").kind, CallKind::Macro);
        assert_eq!(get("collect").kind, CallKind::Method);
        // `Vec` in the turbofish is a type, not a call.
        assert!(!calls.iter().any(|c| c.name == "Vec"));
    }

    #[test]
    fn panic_sites_found_and_classified() {
        let items = parse(
            "fn f(v: &[u8]) -> u8 {\n    let x = v.first().unwrap();\n    assert!(*x > 0);\n    debug_assert!(*x > 0);\n    v[1]\n}\n",
        );
        let sites = &items[0].panic_sites;
        assert!(sites.iter().any(|s| s.what == ".unwrap()"));
        assert!(sites.iter().any(|s| s.what == "assert!"));
        assert!(sites.iter().any(|s| s.what == "indexing"));
        assert!(
            !sites.iter().any(|s| s.what.contains("debug_assert")),
            "debug_assert compiles out of release builds: {sites:?}"
        );
    }

    #[test]
    fn indexing_heuristic_skips_non_place_brackets() {
        let items = parse(
            "fn f() {\n    let a: [u8; 4] = [0; 4];\n    let [x, y] = [1, 2];\n    let v = vec![3];\n    use_(a[0], v[x], f()[y]);\n}\n",
        );
        assert_eq!(items[0].panic_sites.len(), 3, "{:?}", items[0].panic_sites);
    }

    #[test]
    fn markers_attach_through_attributes() {
        let items = parse(
            "// xtask: hot\n#[inline(always)]\nfn hot_loop() {}\n\n// PANIC-FREE: bounds checked by caller\nfn checked() {}\n\n// stray note\nlet x = 1;\nfn unmarked() {}\n",
        );
        assert!(items[0].has_marker(MarkerKind::Hot));
        assert!(items[1].has_marker(MarkerKind::PanicFree));
        assert!(items[2].markers.is_empty());
    }

    #[test]
    fn marker_detection_requires_comment_start_and_blank_code() {
        // Mid-sentence prose must not register.
        assert!(marker_on("// the `PANIC-FREE:` marker is neat", "").is_none());
        assert!(marker_on("/// PANIC-FREE: doc form works", "").is_some());
        assert!(marker_on("// xtask: hot", "").is_some());
        // Trailing comment on a code line is not an own-line marker.
        assert!(marker_on("          // xtask: hot", "let x = 1;").is_none());
        assert!(marker_phrase_on("  // xtask: hot"));
        assert!(!marker_phrase_on("// see the hot marker"));
    }

    #[test]
    fn cfg_test_regions_and_harness_files_are_flagged() {
        let items = parse(
            "fn prod() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { prod(); }\n}\n\nfn prod2() {}\n",
        );
        assert!(!items.iter().find(|i| i.name == "prod").unwrap().harness);
        assert!(items.iter().find(|i| i.name == "t").unwrap().harness);
        assert!(!items.iter().find(|i| i.name == "prod2").unwrap().harness);

        let bench = parse_file(&SourceFile::new(
            "crates/bench/benches/kernels.rs",
            "fn bench_main() { run(); }\n",
        ));
        assert!(bench[0].harness);
    }

    #[test]
    fn float_features_are_profiled() {
        let items = parse(
            "fn f(x: f32, v: &[f32]) -> f32 {\n    let a = x.mul_add(2.0, 1.0);\n    let b = a as f64;\n    let c = b as f32;\n    let s: f32 = v.iter().sum();\n    a + c + s\n}\n",
        );
        let fl = &items[0].float;
        assert_eq!(fl.mul_add.len(), 1);
        assert_eq!(fl.f64_casts, vec![3]);
        assert_eq!(fl.f32_casts, vec![4]);
        assert_eq!(fl.reductions, vec![5]);
    }

    #[test]
    fn strings_and_comments_never_produce_expressions() {
        let items = parse(
            "fn f() {\n    let s = \"x.unwrap() and panic!(boom)\";\n    // a comment calling helper() and v[0]\n    use_(s);\n}\n",
        );
        assert!(items[0].panic_sites.is_empty());
        assert!(!items[0].calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn trait_signatures_without_bodies_close_at_semicolon() {
        let items = parse(
            "trait T {\n    fn sig(&self) -> u8;\n    fn with_default(&self) -> u8 {\n        self.sig()\n    }\n}\n",
        );
        let sig = items.iter().find(|i| i.name == "sig").unwrap();
        assert_eq!(sig.line, 2);
        assert!(sig.calls.is_empty());
        let def = items.iter().find(|i| i.name == "with_default").unwrap();
        assert!(def.calls.iter().any(|c| c.name == "sig"));
    }
}
