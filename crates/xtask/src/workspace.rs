//! The shared in-memory workspace behind `cargo xtask lint` and
//! `cargo xtask analyze`: one disk walk, one set of lexer shadows.
//!
//! Both tools operate on the same [`Workspace`] — a sorted list of
//! tracked files with their full text — and both lean on the lexer's
//! code/comment shadows. Computing those is the dominant cost of a
//! lint pass, so each [`SourceFile`] memoizes its [`Shadows`] in a
//! `OnceCell`: the first rule to ask pays, every later rule (and the
//! whole of `analyze`, which walks the same files again) reads the
//! cache. `cargo xtask check` runs lint *and* analyze over a single
//! load, so the repo is read from disk exactly once.

use crate::lexer::{shadows, Shadows};
use std::cell::OnceCell;
use std::path::{Path, PathBuf};

/// File extensions the lints read.
const TRACKED_EXT: &[&str] = &["rs", "toml", "yml", "yaml", "md"];

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "data"];

/// One file of the workspace under lint/analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes (`crates/obs/src/mem.rs`).
    pub path: String,
    /// Full text.
    pub text: String,
    /// Lazily computed lexer shadows (see [`SourceFile::shadows`]).
    shadow: OnceCell<Shadows>,
}

impl SourceFile {
    /// A file from its path and text; shadows are computed on demand.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        SourceFile {
            path: path.into(),
            text: text.into(),
            shadow: OnceCell::new(),
        }
    }

    /// The code/comment shadows of this file, computed once and cached.
    pub fn shadows(&self) -> &Shadows {
        self.shadow.get_or_init(|| shadows(&self.text))
    }
}

/// The file set the lints and the analyzer run over.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every tracked file (Rust sources, manifests, workflows, docs).
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Looks a file up by its repo-relative path.
    pub fn get(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Every `.rs` file in the workspace.
    pub fn rust_sources(&self) -> impl Iterator<Item = &SourceFile> {
        self.files.iter().filter(|f| f.path.ends_with(".rs"))
    }

    /// Loads every tracked file under `root` with repo-relative,
    /// forward-slash paths.
    pub fn load(root: &Path) -> Workspace {
        let mut files = Vec::new();
        walk(root, root, &mut files);
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }
}

/// The workspace root: two levels above this crate's manifest dir.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels under the repo root")
        .to_path_buf()
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') || name == ".github" {
                walk(root, &path, out);
            }
            continue;
        }
        let tracked = path
            .extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| TRACKED_EXT.contains(&e));
        if !tracked {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // non-UTF8 files carry nothing lintable
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(SourceFile::new(rel, text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadows_are_computed_once_and_cached() {
        let f = SourceFile::new("crates/x/src/a.rs", "fn f() {} // note\n");
        let first = f.shadows() as *const Shadows;
        let second = f.shadows() as *const Shadows;
        assert_eq!(first, second, "second call must hit the cache");
        assert!(f.shadows().comments.contains("note"));
        assert!(!f.shadows().code.contains("note"));
    }

    #[test]
    fn load_reads_the_real_repo() {
        let ws = Workspace::load(&repo_root());
        assert!(ws.get("README.md").is_some());
        assert!(ws.get("crates/xtask/src/workspace.rs").is_some());
        assert!(ws.rust_sources().count() > 10);
        // Sorted, deduplicated paths.
        let paths: Vec<&str> = ws.files.iter().map(|f| f.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(paths, sorted);
    }
}
