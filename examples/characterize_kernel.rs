//! Microarchitectural characterization of one kernel through the
//! simulated Skylake-like hierarchy — the machinery behind the paper's
//! Figs. 5, 6, 8 and 9, usable on any kernel from library code.
//!
//! ```text
//! cargo run --release --example characterize_kernel -- kmer-cnt
//! ```

use genomicsbench::suite::dataset::DatasetSize;
use genomicsbench::suite::kernels::{characterize, prepare, KernelId};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fmi".to_string());
    let id: KernelId = name.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    println!("characterizing '{}' (tiny dataset) ...\n", id.name());
    let kernel = prepare(id, DatasetSize::Tiny);
    let c = characterize(kernel.as_ref(), 8);

    let f = c.mix.fractions();
    println!(
        "instruction mix ({} instructions over {} tasks):",
        c.mix.total(),
        c.tasks_sampled
    );
    for (label, frac) in ["loads", "stores", "int", "simd", "fp", "branches", "other"]
        .iter()
        .zip(f)
    {
        println!("  {label:<9} {:>5.1}%", frac * 100.0);
    }
    println!("\ncache behaviour:");
    println!("  L1 miss rate   {:>6.2}%", c.cache.l1_miss_rate() * 100.0);
    println!("  L2 miss rate   {:>6.2}%", c.cache.l2_miss_rate() * 100.0);
    println!("  LLC miss rate  {:>6.2}%", c.cache.llc_miss_rate() * 100.0);
    println!("  DRAM row miss  {:>6.2}%", c.cache.row_miss_rate() * 100.0);
    println!("  BPKI           {:>6.2}", c.bpki);
    println!("\ntop-down pipeline slots:");
    println!("  retiring       {:>6.1}%", c.topdown.retiring * 100.0);
    println!(
        "  bad spec       {:>6.1}%",
        c.topdown.bad_speculation * 100.0
    );
    println!(
        "  frontend       {:>6.1}%",
        c.topdown.frontend_bound * 100.0
    );
    println!("  core bound     {:>6.1}%", c.topdown.core_bound * 100.0);
    println!("  memory bound   {:>6.1}%", c.topdown.memory_bound * 100.0);
    println!("  modelled IPC   {:>6.2}", c.topdown.ipc);
}
