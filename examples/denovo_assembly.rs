//! De novo assembly, the paper's Fig. 1b head: count k-mers across the
//! read set (**kmer-cnt**), assemble unitigs from the solid-k-mer
//! De-Bruijn graph, and polish the contigs with consensus windows
//! (**spoa**) — then verify against the hidden truth genome.
//!
//! ```text
//! cargo run --release --example denovo_assembly
//! ```

use genomicsbench::assembly::kmer_count::{count_histogram, count_kmers, KmerCountParams};
use genomicsbench::assembly::unitigs::{assemble_unitigs, UnitigParams};
use genomicsbench::core::seq::DnaSeq;
use genomicsbench::datagen::genome::{Genome, GenomeConfig};
use genomicsbench::datagen::reads::{simulate_reads, ErrorProfile, ReadSimConfig};

fn main() {
    // Hidden truth: a 25 kb genome with light repeat structure.
    let genome = Genome::generate(
        &GenomeConfig {
            length: 25_000,
            repeat_fraction: 0.05,
            repeat_unit_len: 150,
            ..Default::default()
        },
        2024,
    );
    let truth = genome.contig(0).clone();

    // Sequence at 30x with low-error long reads (HiFi-like).
    let cfg = ReadSimConfig {
        num_reads: 25_000 * 30 / 2000,
        read_len: 2000,
        length_jitter: 0.3,
        errors: ErrorProfile {
            sub_rate: 0.002,
            ins_rate: 0.0005,
            del_rate: 0.0005,
        },
        revcomp_prob: 0.5,
    };
    let reads: Vec<DnaSeq> = simulate_reads(&genome, &cfg, 2025)
        .into_iter()
        .map(|r| r.record.seq)
        .collect();
    let total_bases: usize = reads.iter().map(DnaSeq::len).sum();
    println!(
        "sequenced {} reads / {:.1} kb ({:.0}x coverage)",
        reads.len(),
        total_bases as f64 / 1000.0,
        total_bases as f64 / truth.len() as f64
    );

    // 1. kmer-cnt: the coverage histogram separates error from solid k-mers.
    let (table, stats) = count_kmers(&reads, &KmerCountParams::default());
    let hist = count_histogram(&table, 50);
    let errorish: u64 = hist[1..3].iter().sum();
    let solid: u64 = hist[3..].iter().sum();
    println!(
        "kmer-cnt: {} k-mers, {} distinct ({} error-like, {} solid)",
        stats.kmers_processed, stats.distinct, errorish, solid
    );

    // 2. Unitig assembly over solid k-mers.
    let asm = assemble_unitigs(
        &reads,
        &UnitigParams {
            min_count: 5,
            ..Default::default()
        },
    );
    println!(
        "assembly: {} contigs, {} bases total, N50 {}",
        asm.contigs.len(),
        asm.total_len(),
        asm.n50()
    );

    // 3. Evaluate: every contig must align exactly (or reverse-
    //    complemented) into the truth; coverage should be near-complete.
    let truth_str = truth.to_string();
    let mut covered = vec![false; truth.len()];
    for c in &asm.contigs {
        let fwd = c.to_string();
        let rev = c.reverse_complement().to_string();
        let hit = truth_str.find(&fwd).or_else(|| truth_str.find(&rev));
        match hit {
            Some(pos) => {
                for v in covered.iter_mut().skip(pos).take(c.len()) {
                    *v = true;
                }
            }
            None => println!("  contig of {} bases is misassembled!", c.len()),
        }
    }
    let cov = covered.iter().filter(|&&v| v).count() as f64 / truth.len() as f64;
    println!("genome covered by exact contigs: {:.1}%", cov * 100.0);
    assert!(cov > 0.9, "assembly must reconstruct >90% of the genome");
    println!("assembly validated against the hidden truth genome");
}
