//! Metagenomic abundance estimation, the paper's Fig. 1c pipeline: build
//! an FM-index over a pan-genome of several "species", classify reads by
//! super-maximal exact matches, and estimate the sample's composition.
//!
//! ```text
//! cargo run --release --example metagenomics
//! ```

use genomicsbench::core::seq::DnaSeq;
use genomicsbench::datagen::genome::{Genome, GenomeConfig};
use genomicsbench::datagen::reads::{simulate_reads, ReadSimConfig};
use genomicsbench::fmi::bidir::BiIndex;
use genomicsbench::fmi::smem::{collect_smems, SmemConfig};

fn main() {
    // Pan-genome: three synthetic species of different sizes.
    let species = ["aureus-like", "coli-like", "phage-like"];
    let sizes = [30_000usize, 50_000, 20_000];
    let genomes: Vec<Genome> = sizes
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            Genome::generate(
                &GenomeConfig {
                    length: len,
                    ..Default::default()
                },
                100 + i as u64,
            )
        })
        .collect();

    // Concatenated pan-genome with species boundaries.
    let mut pan = Vec::new();
    let mut boundaries = Vec::new();
    for g in &genomes {
        boundaries.push(pan.len());
        pan.extend_from_slice(g.contig(0).as_codes());
    }
    boundaries.push(pan.len());
    let pan = DnaSeq::from_codes_unchecked(pan);
    let index = BiIndex::build(&pan);
    println!(
        "pan-genome: {} bases across {} species",
        pan.len(),
        species.len()
    );

    // Sample with known composition 20% / 70% / 10%.
    let true_mix = [0.2f64, 0.7, 0.1];
    let total_reads = 1500usize;
    let mut reads: Vec<(usize, DnaSeq)> = Vec::new();
    for (sp, g) in genomes.iter().enumerate() {
        let n = (total_reads as f64 * true_mix[sp]) as usize;
        let cfg = ReadSimConfig::short(n);
        for sim in simulate_reads(g, &cfg, 200 + sp as u64) {
            reads.push((sp, sim.to_alignment().read.seq));
        }
    }

    // Classify each read by its longest SMEM's location.
    let cfg = SmemConfig {
        min_seed_len: 25,
        min_intv: 1,
    };
    let mut counts = [0u64; 3];
    let mut confusion = [[0u64; 3]; 3];
    let mut unclassified = 0u64;
    for (truth_sp, read) in &reads {
        let smems = collect_smems(&index, read, &cfg);
        let Some(best) = smems.iter().max_by_key(|m| m.len()) else {
            unclassified += 1;
            continue;
        };
        let pos = index.forward().locate(best.interval.k) as usize;
        let sp = boundaries
            .windows(2)
            .position(|w| pos >= w[0] && pos < w[1])
            .expect("in range");
        counts[sp] += 1;
        confusion[*truth_sp][sp] += 1;
    }

    let classified: u64 = counts.iter().sum();
    println!(
        "\nclassified {classified}/{} reads ({unclassified} unclassified)\n",
        reads.len()
    );
    println!(
        "{:<12} {:>8} {:>10} {:>10}",
        "species", "reads", "estimated", "true"
    );
    for (i, name) in species.iter().enumerate() {
        let est = counts[i] as f64 / classified.max(1) as f64;
        println!(
            "{:<12} {:>8} {:>9.1}% {:>9.1}%",
            name,
            counts[i],
            est * 100.0,
            true_mix[i] * 100.0
        );
        // Abundance estimate must land near the truth.
        assert!(
            (est - true_mix[i]).abs() < 0.08,
            "{name}: {est} vs {}",
            true_mix[i]
        );
    }
    let correct: u64 = (0..3).map(|i| confusion[i][i]).sum();
    println!(
        "\nclassification accuracy: {:.1}%",
        correct as f64 / classified as f64 * 100.0
    );
}
