//! Long-read polishing, the paper's Fig. 1b tail: basecall nanopore
//! signal with the neural basecaller, find read overlaps by minimizer
//! anchoring + chaining, then polish a draft with partial-order-alignment
//! consensus windows — and verify the consensus beats the raw reads.
//!
//! ```text
//! cargo run --release --example nanopore_polishing
//! ```

use genomicsbench::core::seq::DnaSeq;
use genomicsbench::datagen::anchors::anchors_between;
use genomicsbench::datagen::genome::{Genome, GenomeConfig};
use genomicsbench::datagen::reads::{simulate_reads, ErrorProfile, ReadSimConfig};
use genomicsbench::datagen::signal::{simulate_signal, PoreModel, SignalSimConfig};
use genomicsbench::dp::abea::{align_events, AbeaParams};
use genomicsbench::dp::chain::{chain_anchors, ChainParams};
use genomicsbench::nn::basecaller::{Basecaller, BasecallerConfig};
use genomicsbench::poa::align::PoaParams;
use genomicsbench::poa::consensus::window_consensus;

fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &x) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &y) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(x != y);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

fn main() {
    let truth_len = 400usize;
    let genome = Genome::generate(
        &GenomeConfig {
            length: truth_len,
            repeat_fraction: 0.0,
            ..Default::default()
        },
        7,
    );
    let truth = genome.contig(0).clone();

    // 1. Neural basecalling demo on simulated raw signal.
    let pore = PoreModel::r9_like();
    let sig = simulate_signal(&truth, &pore, &SignalSimConfig::default(), 8);
    let bc = Basecaller::new(
        &BasecallerConfig {
            chunk_size: 1000,
            ..Default::default()
        },
        9,
    );
    let call = bc.basecall(&sig.raw);
    println!(
        "nn-base: {} raw samples -> {} chunks -> {} called bases (untrained weights)",
        sig.raw.len(),
        call.chunks,
        call.seq.len()
    );

    // 2. Signal-to-reference alignment (abea), the polishing substrate.
    let aligned = align_events(&sig.events, &truth, &pore, &AbeaParams::default())
        .expect("signal aligns to its own reference");
    println!(
        "abea:    {} events aligned over {} band cells (score {:.0})",
        aligned.alignment.len(),
        aligned.cells,
        aligned.score
    );

    // 3. Noisy long reads over the window + overlap detection.
    let cfg = ReadSimConfig {
        num_reads: 25,
        read_len: truth_len,
        length_jitter: 0.0,
        errors: ErrorProfile::nanopore(),
        revcomp_prob: 0.0,
    };
    let reads: Vec<DnaSeq> = simulate_reads(&genome, &cfg, 10)
        .into_iter()
        .map(|r| r.record.seq)
        .collect();
    let anchors = anchors_between(&reads[0], &reads[1], 13, 6);
    let chains = chain_anchors(
        &anchors,
        &ChainParams {
            min_chain_score: 20,
            ..Default::default()
        },
    );
    println!(
        "chain:   reads 0/1 share {} anchors; best chain has {} anchors (score {})",
        anchors.len(),
        chains.chains.first().map_or(0, |c| c.len()),
        chains.chains.first().map_or(0, |c| c.score)
    );

    // 4. Racon-style consensus window.
    let mut window = vec![reads[0].clone()]; // a noisy read as the draft backbone
    window.extend(reads[1..].iter().cloned());
    let (consensus, stats) = window_consensus(&window, &PoaParams::default());
    let raw_err = edit_distance(reads[0].as_codes(), truth.as_codes());
    let cons_err = edit_distance(consensus.as_codes(), truth.as_codes());
    println!(
        "spoa:    {} reads, {} graph nodes, {} DP cells",
        stats.reads, stats.nodes, stats.cells
    );
    println!(
        "polish:  draft-read error {raw_err} bases -> consensus error {cons_err} bases \
         ({}x improvement)",
        if cons_err == 0 {
            raw_err
        } else {
            raw_err / cons_err.max(1)
        }
    );
    assert!(
        cons_err < raw_err / 3,
        "consensus must sharply reduce error"
    );
}
