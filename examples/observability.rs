//! Observability walkthrough: run a kernel instrumented, read the
//! per-task latency percentiles and worker utilization, and export a
//! Chrome/Perfetto trace plus a metrics JSON.
//!
//! ```sh
//! cargo run --release --example observability
//! ```
//! Load the printed trace path at <https://ui.perfetto.dev> to see one
//! lane per worker with a span per task.

use genomicsbench::obs::{MetricsRegistry, TraceRecorder};
use genomicsbench::suite::dataset::DatasetSize;
use genomicsbench::suite::kernels::{self, KernelId};

fn main() {
    let kernel = kernels::prepare(KernelId::Bsw, DatasetSize::Tiny);

    // A TraceRecorder buffers one span per task; NullRecorder would make
    // the same call zero-cost if we only wanted the histograms.
    let recorder = TraceRecorder::new();
    let stats = kernels::run_parallel_instrumented(kernel.as_ref(), 2, &recorder);
    let task_stats = stats.task_stats.as_ref().expect("instrumented run");

    println!(
        "bsw: {} tasks in {:.3}s (checksum {:x})",
        stats.tasks,
        stats.elapsed.as_secs_f64(),
        stats.checksum & 0xFFFF_FFFF
    );
    println!(
        "task latency ns: p50 {}  p90 {}  p99 {}  max {}",
        task_stats.p50_ns, task_stats.p90_ns, task_stats.p99_ns, task_stats.max_ns
    );
    for w in &task_stats.workers {
        println!(
            "worker {}: {} tasks, {:.1}% utilized",
            w.worker,
            w.tasks,
            w.utilization() * 100.0
        );
    }

    // Export: Chrome trace for Perfetto, metrics registry as JSON.
    let trace_path = std::env::temp_dir().join("genomicsbench_observability_trace.json");
    recorder
        .trace()
        .write_to_file(&trace_path)
        .expect("write trace");
    let mut registry = MetricsRegistry::new();
    registry.record_task_stats("bsw", task_stats);
    println!(
        "trace: {} ({} events)",
        trace_path.display(),
        recorder.trace().len()
    );
    println!("metrics:\n{}", registry.to_json());
}
