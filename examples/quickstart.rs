//! Quickstart: run every GenomicsBench-rs kernel on the tiny dataset and
//! print a one-line summary per kernel.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use genomicsbench::suite::dataset::DatasetSize;
use genomicsbench::suite::kernels::{prepare, run_serial, work_distribution, KernelId};

fn main() {
    println!("GenomicsBench-rs quickstart — all 12 kernels, tiny dataset\n");
    println!(
        "{:<11} {:<22} {:>6} {:>10} {:>12} {:>10}",
        "kernel", "source tool", "tasks", "elapsed", "mean work", "imbalance"
    );
    for id in KernelId::ALL {
        let kernel = prepare(id, DatasetSize::Tiny);
        let stats = run_serial(kernel.as_ref());
        let dist = work_distribution(kernel.as_ref());
        println!(
            "{:<11} {:<22} {:>6} {:>9.3}s {:>12.0} {:>9.1}x",
            id.name(),
            id.source_tool(),
            stats.tasks,
            stats.elapsed.as_secs_f64(),
            dist.mean,
            dist.imbalance,
        );
    }
    println!("\nNext steps:");
    println!("  cargo run --release -p gb-suite --bin genomicsbench -- report all --size small");
    println!("  cargo bench -p gb-bench");
}
