//! End-to-end short-read variant calling, the paper's Fig. 1a pipeline,
//! built entirely from GenomicsBench-rs components:
//!
//! 1. simulate a reference genome and a diploid sample (known truth set),
//! 2. sequence the sample with Illumina-like reads,
//! 3. seed each read with SMEMs on the FM-index (**fmi**),
//! 4. extend the best seed with banded Smith-Waterman (**bsw**),
//! 5. re-assemble each region's reads into haplotypes (**dbg**),
//! 6. score read-haplotype likelihoods with the pair-HMM (**phmm**),
//! 7. call SNVs where the alternate haplotype wins, and compare with the
//!    injected truth.
//!
//! ```text
//! cargo run --release --example variant_calling
//! ```

use genomicsbench::assembly::dbg::{assemble_region, DbgParams};
use genomicsbench::core::record::ReadRecord;
use genomicsbench::core::region::{Region, RegionTask};
use genomicsbench::core::seq::DnaSeq;
use genomicsbench::datagen::genome::{Genome, GenomeConfig};
use genomicsbench::datagen::reads::{simulate_reads, ReadSimConfig};
use genomicsbench::datagen::variants::{inject_variants, VariantConfig, VariantKind};
use genomicsbench::dp::bsw::{banded_sw, SwParams};
use genomicsbench::dp::phmm::{forward_likelihood, HmmParams};
use genomicsbench::fmi::bidir::BiIndex;
use genomicsbench::fmi::smem::{collect_smems, SmemConfig};

fn main() {
    let genome_len = 30_000;
    let region_len = 500;
    println!("reference: {genome_len} bases; windows of {region_len}\n");

    // 1. Reference + diploid sample.
    let genome = Genome::generate(
        &GenomeConfig {
            length: genome_len,
            ..Default::default()
        },
        1,
    );
    let reference = genome.contig(0).clone();
    let sample = inject_variants(
        &reference,
        &VariantConfig {
            snv_rate: 0.002,
            ins_rate: 0.0,
            del_rate: 0.0,
            ..Default::default()
        },
        2,
    );
    let truth_snvs: Vec<usize> = sample
        .truth
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Snv { .. }))
        .map(|v| v.pos)
        .collect();
    println!("injected {} SNVs", truth_snvs.len());

    // 2. Sequence both haplotypes at ~20x each.
    let index = BiIndex::build(&reference);
    let mut mapped: Vec<(usize, ReadRecord)> = Vec::new();
    for (hi, hap) in sample.haplotypes().iter().enumerate() {
        let hap_genome = Genome::from_contigs(vec![(*hap).clone()]);
        let cfg = ReadSimConfig {
            num_reads: genome_len * 20 / 151,
            ..ReadSimConfig::short(0)
        };
        for sim in simulate_reads(&hap_genome, &cfg, 3 + hi as u64) {
            // 3+4. Map with SMEM seeding + banded SW extension.
            let fwd = sim.to_alignment().read; // strand-corrected
            if let Some(pos) = map_read(&index, &reference, &fwd.seq) {
                mapped.push((pos, fwd));
            }
        }
    }
    println!("mapped {} reads", mapped.len());

    // 5+6+7. Per-window re-assembly, likelihoods, and calling.
    let mut called: Vec<usize> = Vec::new();
    for region in Region::tile(0, genome_len, region_len) {
        let reads: Vec<_> = mapped
            .iter()
            .filter(|(p, r)| *p < region.end && p + r.len() > region.start)
            .map(|(p, r)| {
                let mut cigar = genomicsbench::core::cigar::Cigar::new();
                cigar.push(r.len() as u32, genomicsbench::core::cigar::CigarOp::Match);
                genomicsbench::core::record::AlignmentRecord::new(
                    r.clone(),
                    0,
                    *p,
                    cigar,
                    60,
                    genomicsbench::core::record::Strand::Forward,
                )
                .expect("cigar matches read")
            })
            .collect();
        if reads.is_empty() {
            continue;
        }
        let task = RegionTask {
            region,
            ref_seq: reference.slice(region.start, region.end),
            reads,
        };
        let asm = assemble_region(
            &task,
            &DbgParams {
                max_haplotypes: 4,
                ..Default::default()
            },
        );
        if asm.haplotypes.len() < 2 {
            continue;
        }
        // Score reference vs best alternate with the pair-HMM.
        let p = HmmParams::default();
        let score = |hap: &DnaSeq| -> f64 {
            task.reads
                .iter()
                .map(|r| forward_likelihood(&r.read, hap, &p).log10_likelihood)
                .sum()
        };
        let ref_score = score(&asm.haplotypes[0]);
        let (best_alt, alt_score) = asm.haplotypes[1..]
            .iter()
            .map(|h| (h, score(h)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("at least one alternate");
        if alt_score > ref_score + 3.0 {
            // Locate the SNV positions the alternate haplotype implies.
            for (off, (a, b)) in task
                .ref_seq
                .as_codes()
                .iter()
                .zip(best_alt.as_codes())
                .enumerate()
            {
                if best_alt.len() == task.ref_seq.len() && a != b {
                    called.push(region.start + off);
                }
            }
        }
    }
    called.sort_unstable();
    called.dedup();

    let tp = called.iter().filter(|p| truth_snvs.contains(p)).count();
    let recall = tp as f64 / truth_snvs.len().max(1) as f64;
    let precision = tp as f64 / called.len().max(1) as f64;
    println!("\ncalled {} sites: {tp} true positives", called.len());
    println!("recall    {:.1}%", recall * 100.0);
    println!("precision {:.1}%", precision * 100.0);
    assert!(recall > 0.3, "pipeline should recover a fair share of SNVs");
}

/// SMEM-seed, then extend the best seed with banded SW; returns the
/// best-scoring reference position.
fn map_read(index: &BiIndex, reference: &DnaSeq, read: &DnaSeq) -> Option<usize> {
    let cfg = SmemConfig {
        min_seed_len: 19,
        min_intv: 1,
    };
    let smems = collect_smems(index, read, &cfg);
    let best = smems.iter().max_by_key(|m| m.len())?;
    let sw = SwParams::default();
    let mut best_hit: Option<(i32, usize)> = None;
    for row in best.interval.k..best.interval.k + best.interval.s.min(4) {
        let hit = index.forward().locate(row) as usize;
        let start = hit.saturating_sub(best.start + 8);
        let target = reference.slice(start, start + read.len() + 16);
        let r = banded_sw(read, &target, &sw);
        if best_hit.is_none_or(|(s, _)| r.score > s) {
            best_hit = Some((r.score, start + r.target_end.saturating_sub(r.query_end)));
        }
    }
    best_hit.map(|(_, p)| p)
}
