//! # genomicsbench
//!
//! A from-scratch Rust reproduction of **GenomicsBench: A Benchmark Suite
//! for Genomics** (ISPASS 2021): twelve data-parallel genomics kernels,
//! their substrates, synthetic dataset generators, and a simulation-based
//! microarchitectural characterization harness.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `gb-core` | sequences, qualities, CIGARs, regions |
//! | [`datagen`] | `gb-datagen` | synthetic genomes, reads, signals, genotypes |
//! | [`fmi`] | `gb-fmi` | SA-IS, FM-index, SMEM search |
//! | [`dp`] | `gb-dp` | bsw, phmm, chain, abea |
//! | [`poa`] | `gb-poa` | partial-order alignment + consensus |
//! | [`assembly`] | `gb-assembly` | De-Bruijn graphs, k-mer counting |
//! | [`popgen`] | `gb-popgen` | genomic relationship matrix |
//! | [`nn`] | `gb-nn` | CNN/LSTM inference, CTC, basecaller, variant caller |
//! | [`pileup`] | `gb-pileup` | pileup counting, Clair tensors |
//! | [`uarch`] | `gb-uarch` | probes, cache simulator, top-down model |
//! | [`simt`] | `gb-simt` | GPU SIMT model (Tables IV–V) |
//! | [`obs`] | `gb-obs` | tracing facade, latency histograms, metrics, Chrome-trace export |
//! | [`suite`] | `gb-suite` | the 12 kernels, datasets, reports, CLI |
//!
//! # Examples
//!
//! ```
//! use genomicsbench::suite::{dataset::DatasetSize, kernels};
//! let kernel = kernels::prepare(kernels::KernelId::Chain, DatasetSize::Tiny);
//! let stats = kernels::run_serial(kernel.as_ref());
//! assert_eq!(stats.tasks, 20);
//! ```

#![forbid(unsafe_code)]

pub use gb_assembly as assembly;
pub use gb_core as core;
pub use gb_datagen as datagen;
pub use gb_dp as dp;
pub use gb_fmi as fmi;
pub use gb_nn as nn;
pub use gb_obs as obs;
pub use gb_pileup as pileup;
pub use gb_poa as poa;
pub use gb_popgen as popgen;
pub use gb_simt as simt;
pub use gb_suite as suite;
pub use gb_uarch as uarch;
