//! Golden-schema test for the `RunManifest` JSON: CI dashboards and
//! `genomicsbench compare` consume these artifacts across suite
//! revisions, so key names and value types are a public contract —
//! any shape change must bump `gb_obs::manifest::SCHEMA_VERSION`.

use genomicsbench::obs::manifest::{
    KernelRecord, MemoryRecord, RunManifest, StageTotal, SCHEMA_VERSION,
};
use genomicsbench::obs::HistogramSummary;
use serde_json::Value;

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.get(key).unwrap_or_else(|| panic!("missing key '{key}'"))
}

fn sample_manifest() -> RunManifest {
    let mut m = RunManifest::new("run", "tiny", 2);
    // Pin the environment-dependent fields so the rendered shape is
    // stable regardless of where the test runs.
    m.git_rev = Some("abc123def456".into());
    m.created_unix_s = Some(1_700_000_000);
    m.dp_engine = Some("simd".into());
    m.add_kernel(
        "bsw",
        KernelRecord {
            wall_ns: 22_000_000,
            tasks: 100,
            checksum: 0x415a93,
            work_unit: "cells".into(),
            work_total: 1_234_567,
            throughput_per_s: 56_116_681.8,
            latency: Some(HistogramSummary {
                count: 100,
                mean: 220_000.0,
                p50: 210_000,
                p90: 300_000,
                p99: 400_000,
                max: 412_345,
            }),
            utilization: Some(0.91),
            memory: Some(MemoryRecord {
                peak_bytes: 12 << 20,
                end_bytes: 3 << 20,
                allocs: 4096,
                frees: 4000,
                task_peak_max_bytes: Some(512 << 10),
                task_peak_mean_bytes: Some(128 << 10),
            }),
            stages: Some(vec![
                StageTotal {
                    path: "bsw".into(),
                    total_ns: 22_000_000,
                },
                StageTotal {
                    path: "bsw;tasks".into(),
                    total_ns: 21_000_000,
                },
            ]),
            // None: the optional 1.4 fields are omitted from the JSON,
            // keeping the golden shape below byte-stable.
            prepare_wall_ns: None,
            cache_hit: None,
        },
    );
    let metrics = serde_json::json!({
        "counters": {"bsw.tasks": 100},
        "gauges": {"bsw.utilization": 0.91},
        "histograms": {},
    });
    // Normalize the literal through one serialize/parse cycle so save ->
    // load equality compares parsed numbers against parsed numbers
    // (integer-width representation can differ between the two paths).
    m.metrics = serde_json::from_str(&serde_json::to_string(&metrics).unwrap()).unwrap();
    m
}

#[test]
fn manifest_json_golden_shape() {
    let m = sample_manifest();
    let v: Value = serde_json::from_str(&m.to_json_string()).unwrap();
    let root = v.as_object().expect("manifest is an object");

    let mut root_keys: Vec<&str> = root.keys().map(String::as_str).collect();
    root_keys.sort_unstable();
    assert_eq!(
        root_keys,
        [
            "command",
            "created_unix_s",
            "dp_engine",
            "git_rev",
            "kernels",
            "metrics",
            "schema_version",
            "suite_version",
            "threads",
            "tier",
        ],
        "RunManifest top-level keys changed — bump SCHEMA_VERSION"
    );
    assert_eq!(field(&v, "schema_version").as_str(), Some(SCHEMA_VERSION));
    assert_eq!(field(&v, "command").as_str(), Some("run"));
    assert_eq!(field(&v, "tier").as_str(), Some("tiny"));
    assert_eq!(field(&v, "threads").as_u64(), Some(2));
    // Schema 1.2 addition: the DP engine the run used.
    assert_eq!(field(&v, "dp_engine").as_str(), Some("simd"));
    assert!(field(&v, "suite_version").as_str().is_some());

    let bsw_v = field(field(&v, "kernels"), "bsw");
    let bsw = bsw_v.as_object().expect("kernel record");
    let mut kernel_keys: Vec<&str> = bsw.keys().map(String::as_str).collect();
    kernel_keys.sort_unstable();
    assert_eq!(
        kernel_keys,
        [
            "checksum",
            "latency",
            "memory",
            "stages",
            "tasks",
            "throughput_per_s",
            "utilization",
            "wall_ns",
            "work_total",
            "work_unit",
        ],
        "KernelRecord keys changed — bump SCHEMA_VERSION"
    );
    assert!(field(bsw_v, "wall_ns").as_u64().is_some());
    assert!(field(bsw_v, "throughput_per_s").as_f64().is_some());
    assert_eq!(field(bsw_v, "work_unit").as_str(), Some("cells"));
    let latency = field(bsw_v, "latency");
    for name in ["count", "mean", "p50", "p90", "p99", "max"] {
        assert!(field(latency, name).as_f64().is_some(), "latency.{name}");
    }
    let memory = field(bsw_v, "memory");
    for name in [
        "peak_bytes",
        "end_bytes",
        "allocs",
        "frees",
        // Schema 1.1 additions: per-task attribution from the pool.
        "task_peak_max_bytes",
        "task_peak_mean_bytes",
    ] {
        assert!(field(memory, name).as_u64().is_some(), "memory.{name}");
    }
    // Schema 1.3 addition: the flattened stage tree.
    let stages = field(bsw_v, "stages").as_array().expect("stages array");
    assert_eq!(stages.len(), 2);
    assert_eq!(field(&stages[0], "path").as_str(), Some("bsw"));
    assert!(field(&stages[0], "total_ns").as_u64().is_some());
}

#[test]
fn task_peak_fields_are_omitted_when_absent() {
    // Memory records from uninstrumented spans (no pool attribution)
    // keep the schema-1.0 shape: the 1.1 fields are additive-optional.
    let mut m = sample_manifest();
    let mem = m.kernels.get_mut("bsw").unwrap().memory.as_mut().unwrap();
    mem.task_peak_max_bytes = None;
    mem.task_peak_mean_bytes = None;
    let v: Value = serde_json::from_str(&m.to_json_string()).unwrap();
    let memory = field(field(field(&v, "kernels"), "bsw"), "memory")
        .as_object()
        .expect("memory record");
    assert!(memory.get("task_peak_max_bytes").is_none());
    assert!(memory.get("task_peak_mean_bytes").is_none());
}

#[test]
fn optional_fields_are_omitted_not_null() {
    // Sparse manifests (no instrumentation, no mem-profile) stay sparse:
    // absent optionals must not serialize as nulls.
    let mut m = RunManifest::new("profile", "small", 1);
    m.git_rev = None;
    m.created_unix_s = None;
    m.add_kernel(
        "fmi",
        KernelRecord {
            wall_ns: 1,
            tasks: 1,
            checksum: 0,
            work_unit: "occ_lookups".into(),
            work_total: 0,
            throughput_per_s: 0.0,
            latency: None,
            utilization: None,
            memory: None,
            stages: None,
            prepare_wall_ns: None,
            cache_hit: None,
        },
    );
    let v: Value = serde_json::from_str(&m.to_json_string()).unwrap();
    assert!(v.get("git_rev").is_none());
    assert!(v.get("created_unix_s").is_none());
    assert!(v.get("dp_engine").is_none());
    let fmi = field(field(&v, "kernels"), "fmi")
        .as_object()
        .expect("kernel record");
    for absent in ["latency", "utilization", "memory", "stages"] {
        assert!(fmi.get(absent).is_none(), "{absent} should be omitted");
    }
}

#[test]
fn loader_round_trips_the_golden_sample() {
    let path = std::env::temp_dir().join(format!("gb_manifest_golden_{}.json", std::process::id()));
    let m = sample_manifest();
    m.save(&path).unwrap();
    let loaded = RunManifest::load(&path).unwrap();
    assert_eq!(loaded, m);
    std::fs::remove_file(&path).unwrap();
}
