//! End-to-end observability: an instrumented kernel run yields coherent
//! task statistics, and the exported Chrome trace has the golden shape
//! Perfetto expects (valid JSON array, `X` events with consistent
//! timestamps/durations inside the run's wall time).

use genomicsbench::obs::{LogHistogram, NullRecorder, TraceRecorder};
use genomicsbench::suite::dataset::DatasetSize;
use genomicsbench::suite::kernels::{self, KernelId};
use genomicsbench::suite::pool::run_dynamic_instrumented;

#[test]
fn instrumented_kernel_run_has_coherent_stats() {
    let kernel = kernels::prepare(KernelId::Chain, DatasetSize::Tiny);
    let plain = kernels::run_parallel(kernel.as_ref(), 2);
    let inst = kernels::run_parallel_instrumented(kernel.as_ref(), 2, &NullRecorder);
    assert_eq!(
        plain.checksum, inst.checksum,
        "instrumentation changed results"
    );
    assert!(plain.task_stats.is_none());
    let stats = inst.task_stats.expect("instrumented run records stats");
    assert_eq!(stats.count as usize, inst.tasks);
    assert_eq!(stats.workers.len(), 2);
    assert_eq!(
        stats.workers.iter().map(|w| w.tasks).sum::<u64>() as usize,
        inst.tasks
    );
    // Percentiles are ordered and bounded by the max.
    assert!(stats.p50_ns <= stats.p90_ns);
    assert!(stats.p90_ns <= stats.p99_ns);
    assert!(stats.p99_ns <= stats.max_ns);
    assert!(stats.utilization > 0.0 && stats.utilization <= 1.0);
}

#[test]
fn busy_plus_idle_matches_wall_time() {
    let (_, elapsed, stats) = run_dynamic_instrumented(
        200,
        2,
        |i| {
            let mut acc = 0u64;
            for j in 0..2_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i as u64 ^ j));
            }
            acc
        },
        &NullRecorder,
        "work",
    );
    let wall_ns = elapsed.as_nanos() as u64;
    for w in &stats.workers {
        assert!(w.busy_ns <= wall_ns);
        // idle is defined as wall - busy, so the sum reconstructs wall.
        assert_eq!(w.busy_ns + w.idle_ns, wall_ns.max(w.busy_ns));
    }
}

#[test]
fn chrome_trace_golden_shape() {
    let recorder = TraceRecorder::new();
    let kernel = kernels::prepare(KernelId::Chain, DatasetSize::Tiny);
    let inst = kernels::run_parallel_instrumented(kernel.as_ref(), 2, &recorder);
    let end_ns = recorder
        .trace()
        .events
        .iter()
        .map(|e| e.ts_ns + e.dur_ns)
        .max()
        .unwrap_or(0);
    let json_text = recorder.into_trace().to_json_string();

    let v: serde_json::Value = serde_json::from_str(&json_text).expect("trace is valid JSON");
    let events = v.as_array().expect("trace is a JSON array");
    assert_eq!(events.len(), inst.tasks, "one span per task");
    let end_us = end_ns as f64 / 1000.0;
    for e in events {
        // Golden shape: the exact keys Perfetto's importer needs.
        for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing '{key}': {e}");
        }
        assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(e.get("name").and_then(|n| n.as_str()), Some("chain"));
        assert_eq!(e.get("cat").and_then(|c| c.as_str()), Some("task"));
        let ts = e.get("ts").and_then(|t| t.as_f64()).expect("numeric ts");
        let dur = e.get("dur").and_then(|d| d.as_f64()).expect("numeric dur");
        assert!(ts >= 0.0 && dur >= 0.0);
        assert!(
            ts + dur <= end_us + 1.0,
            "span [{ts}, {ts}+{dur}] past end {end_us}"
        );
        let tid = e.get("tid").and_then(|t| t.as_u64()).expect("numeric tid");
        assert!(tid < 2, "tid {tid} not a worker lane");
    }
}

#[test]
fn histogram_percentiles_track_sorted_reference() {
    // Deterministic xorshift stream, no RNG dependency.
    let mut state = 0x0123_4567_89ab_cdefu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let samples: Vec<u64> = (0..5_000).map(|_| next() % 10_000_000).collect();
    let mut h = LogHistogram::new();
    for &s in &samples {
        h.record(s);
    }
    let mut sorted = samples;
    sorted.sort_unstable();
    for (q, est) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        assert!(est >= truth, "q={q}: {est} < {truth}");
        assert!(
            est <= truth + truth / 32 + 1,
            "q={q}: {est} too far above {truth}"
        );
    }
}

#[test]
fn histogram_merge_is_order_independent() {
    let chunks: Vec<Vec<u64>> = (0..4)
        .map(|c| {
            (0..500u64)
                .map(|i| (i * 2654435761 + c) % 1_000_000)
                .collect()
        })
        .collect();
    let mut forward = LogHistogram::new();
    let mut backward = LogHistogram::new();
    let mut bulk = LogHistogram::new();
    for chunk in &chunks {
        let mut h = LogHistogram::new();
        for &v in chunk {
            h.record(v);
            bulk.record(v);
        }
        forward.merge(&h);
    }
    for chunk in chunks.iter().rev() {
        let mut h = LogHistogram::new();
        for &v in chunk {
            h.record(v);
        }
        backward.merge(&h);
    }
    for h in [&forward, &backward] {
        assert_eq!(h.count(), bulk.count());
        assert_eq!(h.min(), bulk.min());
        assert_eq!(h.max(), bulk.max());
        for q in [0.25, 0.5, 0.75, 0.99] {
            assert_eq!(h.value_at_quantile(q), bulk.value_at_quantile(q));
        }
    }
}
