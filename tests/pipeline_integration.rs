//! Cross-crate integration tests: data flows spanning generator,
//! substrate and kernel crates, checked against ground truth.

use genomicsbench::core::seq::DnaSeq;
use genomicsbench::datagen::genome::{Genome, GenomeConfig};
use genomicsbench::datagen::reads::{simulate_reads, ErrorProfile, ReadSimConfig};

#[test]
fn error_free_reads_map_back_to_their_origin() {
    // datagen -> fmi: every error-free read's SMEM set must include its
    // true position.
    use genomicsbench::fmi::bidir::BiIndex;
    use genomicsbench::fmi::smem::{collect_smems, SmemConfig};
    let genome = Genome::generate(
        &GenomeConfig {
            length: 40_000,
            repeat_fraction: 0.0,
            ..Default::default()
        },
        77,
    );
    let index = BiIndex::build(genome.contig(0));
    let cfg = ReadSimConfig {
        errors: ErrorProfile::perfect(),
        revcomp_prob: 0.0,
        ..ReadSimConfig::short(60)
    };
    for sim in simulate_reads(&genome, &cfg, 78) {
        let smems = collect_smems(
            &index,
            &sim.record.seq,
            &SmemConfig {
                min_seed_len: 20,
                min_intv: 1,
            },
        );
        // A perfect read in unique sequence yields one full-length SMEM.
        let full = smems
            .iter()
            .find(|m| m.len() == sim.record.len())
            .unwrap_or_else(|| panic!("no full-length SMEM for read at {}", sim.true_pos));
        let hits: Vec<u32> = (full.interval.k..full.interval.k + full.interval.s)
            .map(|row| index.forward().locate(row))
            .collect();
        assert!(
            hits.contains(&(sim.true_pos as u32)),
            "true position {} missing from {hits:?}",
            sim.true_pos
        );
    }
}

#[test]
fn kmer_counts_reflect_genome_coverage() {
    // datagen -> assembly: error-free reads at uniform coverage give
    // genome k-mers counts near the coverage depth.
    use genomicsbench::assembly::kmer_count::{count_kmers, KmerCountParams};
    let genome = Genome::generate(
        &GenomeConfig {
            length: 20_000,
            repeat_fraction: 0.0,
            ..Default::default()
        },
        79,
    );
    let coverage = 12usize;
    let cfg = ReadSimConfig {
        num_reads: 20_000 * coverage / 1000,
        read_len: 1000,
        length_jitter: 0.0,
        errors: ErrorProfile::perfect(),
        revcomp_prob: 0.5,
    };
    let reads: Vec<DnaSeq> = simulate_reads(&genome, &cfg, 80)
        .into_iter()
        .map(|r| r.record.seq)
        .collect();
    let (table, _) = count_kmers(&reads, &KmerCountParams::default());
    // Sample genome k-mers and check their counts cluster near coverage.
    let mut close = 0;
    let mut total = 0;
    for (i, km) in genome.contig(0).kmers(17) {
        if i % 97 != 0 {
            continue;
        }
        total += 1;
        let canon = genomicsbench::core::seq::canonical_kmer(km, 17);
        let c = table.get(canon).unwrap_or(0);
        if (c as i64 - coverage as i64).abs() <= coverage as i64 {
            close += 1;
        }
    }
    assert!(
        close * 10 >= total * 8,
        "only {close}/{total} k-mers near coverage"
    );
}

#[test]
fn signal_alignment_recovers_event_truth() {
    // datagen signal -> abea: aligning a clean signal against its own
    // reference maps events to their true k-mers.
    use genomicsbench::datagen::signal::{simulate_signal, PoreModel, SignalSimConfig};
    use genomicsbench::dp::abea::{align_events, AbeaParams};
    let genome = Genome::generate(
        &GenomeConfig {
            length: 500,
            repeat_fraction: 0.0,
            ..Default::default()
        },
        81,
    );
    let seq = genome.contig(0);
    let model = PoreModel::r9_like();
    let cfg = SignalSimConfig {
        split_prob: 0.0,
        skip_prob: 0.0,
        ..Default::default()
    };
    let sig = simulate_signal(seq, &model, &cfg, 82);
    let r = align_events(&sig.events, seq, &model, &AbeaParams::default()).expect("aligns");
    // One event per k-mer: the alignment should be nearly the identity.
    let exact = r
        .alignment
        .iter()
        .filter(|a| a.event_idx == a.kmer_idx)
        .count();
    assert!(
        exact * 10 >= r.alignment.len() * 9,
        "{exact}/{} diagonal",
        r.alignment.len()
    );
}

#[test]
fn pileup_to_variant_call_chain() {
    // datagen -> pileup -> nn: the full nn-variant front end produces
    // valid probability outputs at every candidate.
    use genomicsbench::core::record::AlignmentRecord;
    use genomicsbench::core::region::{Region, RegionTask};
    use genomicsbench::nn::variant_caller::{VariantCaller, VariantCallerConfig};
    use genomicsbench::pileup::feature::clair_tensor;
    use genomicsbench::pileup::pileup::count_pileup;
    let genome = Genome::generate(
        &GenomeConfig {
            length: 10_000,
            ..Default::default()
        },
        83,
    );
    let cfg = ReadSimConfig {
        num_reads: 60,
        ..ReadSimConfig::long(0)
    };
    let reads: Vec<AlignmentRecord> = simulate_reads(&genome, &cfg, 84)
        .iter()
        .map(|r| r.to_alignment())
        .collect();
    let contig = genome.contig(0).clone();
    let task = RegionTask {
        region: Region::new(0, 0, 10_000),
        ref_seq: contig.clone(),
        reads,
    };
    let pile = count_pileup(&task);
    let model = VariantCaller::new(&VariantCallerConfig::default(), 85);
    for center in [500usize, 2500, 5000, 9000] {
        let t = clair_tensor(&pile, &contig, center);
        let call = model.call(&t);
        let sum: f32 = call.zygosity_probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "center {center}");
    }
}

#[test]
fn consensus_polishing_beats_raw_reads() {
    // datagen -> poa: consensus error must be far below raw-read error.
    use genomicsbench::poa::align::PoaParams;
    use genomicsbench::poa::consensus::window_consensus;
    let genome = Genome::generate(
        &GenomeConfig {
            length: 300,
            repeat_fraction: 0.0,
            ..Default::default()
        },
        86,
    );
    let truth = genome.contig(0).clone();
    let cfg = ReadSimConfig {
        num_reads: 20,
        read_len: 300,
        length_jitter: 0.0,
        errors: ErrorProfile::nanopore(),
        revcomp_prob: 0.0,
    };
    let mut window = vec![truth.clone()];
    window.extend(
        simulate_reads(&genome, &cfg, 87)
            .into_iter()
            .map(|r| r.record.seq),
    );
    let (c, _) = window_consensus(&window, &PoaParams::default());
    let dist = edit_distance(c.as_codes(), truth.as_codes());
    assert!(dist <= 5, "consensus edit distance {dist}");
}

fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &x) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &y) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(x != y);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}
