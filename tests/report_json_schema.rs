//! JSON schema stability for the report generators: external tooling
//! (plots, CI dashboards) consumes `genomicsbench report --json`, so the
//! field names verified here are a public contract.

use genomicsbench::suite::dataset::DatasetSize;
use genomicsbench::suite::reports;

#[test]
fn table2_json_fields() {
    let r = reports::table2();
    let rows = r.json.as_array().expect("array");
    assert_eq!(rows.len(), 12);
    for row in rows {
        for field in ["kernel", "tool", "pipeline", "motif"] {
            assert!(row.get(field).is_some(), "missing {field}");
        }
    }
}

#[test]
fn gpu_table_json_fields() {
    let r = reports::table4(DatasetSize::Tiny);
    for kernel in ["abea", "nn-base"] {
        let k = r.json.get(kernel).expect("kernel present");
        for field in [
            "branch_efficiency",
            "warp_efficiency",
            "nonpred_warp_efficiency",
            "occupancy",
            "sm_utilization",
            "gld_efficiency",
            "gst_efficiency",
        ] {
            let v = k
                .get(field)
                .and_then(|v| v.as_f64())
                .expect("numeric field");
            assert!((0.0..=1.0).contains(&v), "{kernel}.{field} = {v}");
        }
    }
}

#[test]
fn fig_json_rows_have_kernel_field() {
    let size = DatasetSize::Tiny;
    let chars = reports::characterize_all(size);
    for r in [
        reports::fig4(size),
        reports::fig5(&chars),
        reports::fig6(&chars),
        reports::fig8(&chars),
        reports::fig9(&chars),
    ] {
        let rows = r
            .json
            .as_array()
            .unwrap_or_else(|| panic!("{} not an array", r.name));
        assert!(!rows.is_empty(), "{} empty", r.name);
        for row in rows {
            assert!(row.get("kernel").is_some(), "{} row missing kernel", r.name);
        }
    }
}

#[test]
fn fig9_fractions_sum_to_one_in_json() {
    let chars = reports::characterize_all(DatasetSize::Tiny);
    let r = reports::fig9(&chars);
    for row in r.json.as_array().expect("array") {
        let sum: f64 = [
            "retiring",
            "bad_speculation",
            "frontend_bound",
            "core_bound",
            "memory_bound",
        ]
        .iter()
        .map(|f| row.get(f).and_then(|v| v.as_f64()).expect("numeric"))
        .sum();
        assert!((sum - 1.0).abs() < 1e-6, "{row}: sum {sum}");
    }
}
