//! Suite-level smoke tests: every kernel and every report on the tiny
//! dataset tier.

use genomicsbench::suite::dataset::DatasetSize;
use genomicsbench::suite::kernels::{
    characterize, prepare, run_parallel, run_serial, work_distribution, KernelId,
};
use genomicsbench::suite::reports;

#[test]
fn every_kernel_runs_and_is_thread_deterministic() {
    for id in KernelId::ALL {
        let kernel = prepare(id, DatasetSize::Tiny);
        assert!(kernel.num_tasks() > 0, "{} has no tasks", id.name());
        let serial = run_serial(kernel.as_ref());
        let parallel = run_parallel(kernel.as_ref(), 3);
        assert_eq!(serial.checksum, parallel.checksum, "{} diverged", id.name());
        assert_eq!(serial.tasks, kernel.num_tasks());
    }
}

#[test]
fn every_kernel_characterizes() {
    for id in KernelId::ALL {
        let kernel = prepare(id, DatasetSize::Tiny);
        let c = characterize(kernel.as_ref(), 1);
        assert!(c.mix.total() > 0, "{} recorded no instructions", id.name());
        let sum: f64 = c.topdown.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "{} slots sum to {sum}", id.name());
        assert!(c.cache.l1_accesses > 0, "{} touched no memory", id.name());
    }
}

#[test]
fn work_distributions_are_sane() {
    for id in KernelId::ALL {
        let kernel = prepare(id, DatasetSize::Tiny);
        let d = work_distribution(kernel.as_ref());
        assert!(d.mean > 0.0, "{} mean work 0", id.name());
        assert!(d.max >= d.min);
        assert!(
            d.imbalance >= 0.99,
            "{} imbalance {}",
            id.name(),
            d.imbalance
        );
    }
}

#[test]
fn all_reports_render_on_tiny() {
    let size = DatasetSize::Tiny;
    let chars = reports::characterize_all(size);
    assert_eq!(chars.len(), 10, "CPU characterization covers 10 kernels");
    for r in [
        reports::table1(),
        reports::table2(),
        reports::table3(size),
        reports::table4(size),
        reports::table5(size),
        reports::fig3(size),
        reports::fig4(size),
        reports::fig5(&chars),
        reports::fig6(&chars),
        reports::fig8(&chars),
        reports::fig9(&chars),
    ] {
        assert!(!r.text.is_empty(), "{} rendered empty", r.name);
        assert!(!r.json.is_null(), "{} has no json", r.name);
    }
}

#[test]
fn gpu_tables_have_paper_ordering() {
    let abea = genomicsbench::suite::kernels::abea_gpu_report(DatasetSize::Tiny);
    let nn = genomicsbench::suite::kernels::nnbase_gpu_report(DatasetSize::Tiny);
    // The paper's Table IV/V ordering: nn-base is more regular than abea
    // on every metric.
    assert!(nn.warp_efficiency > abea.warp_efficiency);
    assert!(nn.occupancy > abea.occupancy);
    assert!(nn.sm_utilization > abea.sm_utilization);
    assert!(nn.gld_efficiency > abea.gld_efficiency);
    assert!(nn.gst_efficiency >= abea.gst_efficiency);
    assert_eq!(nn.branch_efficiency, 1.0);
    assert_eq!(abea.branch_efficiency, 1.0);
}

#[test]
fn fig3_overcompute_and_sorting_mitigation() {
    let rows = genomicsbench::suite::kernels::bsw_batch_reports(DatasetSize::Tiny);
    let unsorted = rows
        .iter()
        .find(|(l, _)| l.contains("unsorted") && l.contains("16"))
        .unwrap();
    let sorted = rows
        .iter()
        .find(|(l, _)| l.contains("sorted") && !l.contains("unsorted"))
        .unwrap();
    assert!(unsorted.1.overcompute() > 1.2);
    assert!(sorted.1.overcompute() < unsorted.1.overcompute());
}

#[test]
fn memory_bound_ordering_matches_paper() {
    // The paper's headline: fmi and kmer-cnt are the memory-bound
    // outliers; phmm/bsw/chain retire most of their slots.
    let chars = reports::characterize_all(DatasetSize::Tiny);
    let get = |id: KernelId| {
        chars
            .iter()
            .find(|(k, _)| *k == id)
            .map(|(_, c)| c.topdown)
            .expect("present")
    };
    let kmercnt = get(KernelId::KmerCnt);
    let phmm = get(KernelId::Phmm);
    let bsw = get(KernelId::Bsw);
    assert!(
        kmercnt.memory_bound > 0.5,
        "kmer-cnt {}",
        kmercnt.memory_bound
    );
    assert!(phmm.retiring > 0.5, "phmm {}", phmm.retiring);
    assert!(bsw.retiring > 0.5, "bsw {}", bsw.retiring);
    assert!(kmercnt.memory_bound > phmm.memory_bound);
}
